//! Query normalization: parsed AST → [`NormQuery`].
//!
//! Implements the paper's preprocessing (§V-B):
//!
//! 1. give every relation occurrence a distinct name (bindings) while
//!    recording its base relation;
//! 2. build equivalence classes of attributes from plain equi-join
//!    conditions and drop those conditions from the predicate list;
//! 3. retain all other predicates (non-equi joins, selections);
//! 4. push selections down to the individual relations and join predicates
//!    to the earliest node where their relations meet (§II).
//!
//! Queries whose FROM clause is a plain relation list (only inner joins)
//! get a canonical left-deep tree re-annotated from the pooled conditions;
//! queries with explicit outer joins keep their ON conditions **at the
//! nodes where they were written** (equivalence-class pooling across an
//! outer-join boundary would change semantics: a representative swap can
//! turn a NULL-extended attribute into a base attribute).

use std::collections::BTreeMap;

use xdata_catalog::{Schema, SqlType, Value};
use xdata_sql::{ColRef, CompareOp, Expr, FromItem, JoinKind, Query, SelectItem};

use crate::error::RelAlgError;
use crate::ir::{AggSpec, AttrRef, NormQuery, Occurrence, Operand, Pred, SelectSpec};
use crate::tree::JoinTree;

/// Normalize a parsed query against `schema`. `[NOT] IN (SELECT ...)` and
/// `[NOT] EXISTS` conjuncts are lowered into retained subquery predicates
/// (§V-H); `[NOT] LIKE` and `IS [NOT] NULL` conjuncts into retained string
/// and null checks.
pub fn normalize(query: &Query, schema: &Schema) -> Result<NormQuery, RelAlgError> {
    let mut n = Normalizer::new(schema);
    n.run(query)
}

struct Normalizer<'a> {
    schema: &'a Schema,
    occurrences: Vec<Occurrence>,
    by_binding: BTreeMap<String, usize>,
}

impl<'a> Normalizer<'a> {
    fn new(schema: &'a Schema) -> Self {
        Normalizer { schema, occurrences: Vec::new(), by_binding: BTreeMap::new() }
    }

    fn run(&mut self, query: &Query) -> Result<NormQuery, RelAlgError> {
        // Pass 1: occurrences, plus the raw tree shape with per-node ON
        // conditions deferred (we must register all bindings before
        // resolving any column).
        for item in &query.from {
            self.register_bindings(item)?;
        }
        if self.occurrences.len() > 64 {
            return Err(RelAlgError::Unsupported("more than 64 relation occurrences".into()));
        }

        // Pass 2: build the tree with resolved ON conditions.
        let mut trees = Vec::new();
        let mut has_outer = false;
        for item in &query.from {
            trees.push(self.build_tree(item, &mut has_outer)?);
        }
        let raw_tree = trees
            .into_iter()
            .reduce(|l, r| JoinTree::node(JoinKind::Inner, l, r, vec![]))
            .ok_or_else(|| RelAlgError::Unsupported("empty FROM clause".into()))?;

        // Pass 3: resolve WHERE conditions.
        let mut where_preds = Vec::new();
        for c in &query.where_clause {
            where_preds.push(self.resolve_condition(&c.lhs, c.op, &c.rhs)?);
        }

        // Pass 4: pool equivalence classes and retained predicates. ON
        // equi-joins participate in the classes (the generation algorithms
        // need them) but, for outer queries, stay at their nodes for
        // execution.
        let mut all_conds: Vec<Pred> = where_preds.clone();
        collect_on_conds(&raw_tree, &mut all_conds);
        let (eq_classes, preds) = pool_conditions(&all_conds);

        // Pass 4b: lower retained subquery / LIKE / NULL-check predicates.
        let scope = crate::decorrelate::OuterScope {
            schema: self.schema,
            by_binding: &self.by_binding,
            occurrences: &self.occurrences,
        };
        let subs = crate::decorrelate::lower_subqueries(query, &scope)?;
        let mut likes = Vec::new();
        for l in &query.where_like {
            let c = match &l.lhs {
                Expr::Column(c) => c,
                other => {
                    return Err(RelAlgError::Unsupported(format!(
                        "LIKE applies to a plain string column, found `{other}`"
                    )))
                }
            };
            let (attr, ty) = self.resolve_colref(c)?;
            if ty != SqlType::Varchar {
                return Err(RelAlgError::TypeMismatch(format!(
                    "LIKE on non-string column `{c}`"
                )));
            }
            likes.push(crate::ir::LikePred {
                attr,
                negated: l.negated,
                pattern: l.pattern.clone(),
            });
        }
        let mut null_checks = Vec::new();
        for n in &query.where_null {
            let c = match &n.lhs {
                Expr::Column(c) => c,
                other => {
                    return Err(RelAlgError::Unsupported(format!(
                        "IS [NOT] NULL applies to a plain column, found `{other}`"
                    )))
                }
            };
            let (attr, _) = self.resolve_colref(c)?;
            null_checks.push(crate::ir::NullCheck { attr, negated: n.negated });
        }

        // Pass 5: select list / aggregation.
        let select = self.resolve_select(query)?;

        // Pass 6: the execution tree.
        let tree = if has_outer {
            // Keep ON conditions as written; add WHERE join predicates
            // (including plain equi-joins, verbatim) at the earliest node.
            place_where_preds(&raw_tree, &where_preds)
        } else {
            raw_tree.annotate(&eq_classes, &preds)
        };

        let q = NormQuery {
            occurrences: std::mem::take(&mut self.occurrences),
            eq_classes,
            preds,
            tree,
            has_outer,
            distinct: query.distinct,
            select,
            subs,
            likes,
            null_checks,
        };
        validate_full_outer_projection(&q)?;
        Ok(q)
    }

    fn register_bindings(&mut self, item: &FromItem) -> Result<(), RelAlgError> {
        match item {
            FromItem::Table { name, alias } => {
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                if self.schema.relation(name).is_none() {
                    return Err(RelAlgError::UnknownRelation(name.clone()));
                }
                if self.by_binding.contains_key(&binding) {
                    return Err(RelAlgError::DuplicateBinding(binding));
                }
                self.by_binding.insert(binding.clone(), self.occurrences.len());
                self.occurrences.push(Occurrence { name: binding, base: name.clone() });
                Ok(())
            }
            FromItem::Join { left, right, .. } => {
                self.register_bindings(left)?;
                self.register_bindings(right)
            }
        }
    }

    fn build_tree(&mut self, item: &FromItem, has_outer: &mut bool) -> Result<JoinTree, RelAlgError> {
        match item {
            FromItem::Table { name, alias } => {
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                let occ = self.by_binding[&binding];
                Ok(JoinTree::Leaf(occ))
            }
            FromItem::Join { kind, left, right, on } => {
                if *kind != JoinKind::Inner {
                    *has_outer = true;
                }
                let l = self.build_tree(left, has_outer)?;
                let r = self.build_tree(right, has_outer)?;
                let mut conds = Vec::new();
                for c in on {
                    conds.push(self.resolve_condition(&c.lhs, c.op, &c.rhs)?);
                }
                Ok(JoinTree::node(*kind, l, r, conds))
            }
        }
    }

    fn resolve_colref(&self, c: &ColRef) -> Result<(AttrRef, SqlType), RelAlgError> {
        match &c.table {
            Some(t) => {
                let occ = *self
                    .by_binding
                    .get(t)
                    .ok_or_else(|| RelAlgError::UnknownRelation(t.clone()))?;
                let rel = self
                    .schema
                    .relation(&self.occurrences[occ].base)
                    .ok_or_else(|| RelAlgError::UnknownRelation(self.occurrences[occ].base.clone()))?;
                let col = rel
                    .attr_pos(&c.column)
                    .ok_or_else(|| RelAlgError::UnknownColumn(c.to_string()))?;
                Ok((AttrRef::new(occ, col), rel.attr(col).ty))
            }
            None => {
                let mut found = None;
                for (i, occ) in self.occurrences.iter().enumerate() {
                    let rel = self
                        .schema
                        .relation(&occ.base)
                        .ok_or_else(|| RelAlgError::UnknownRelation(occ.base.clone()))?;
                    if let Some(col) = rel.attr_pos(&c.column) {
                        if found.is_some() {
                            return Err(RelAlgError::AmbiguousColumn(c.column.clone()));
                        }
                        found = Some((AttrRef::new(i, col), rel.attr(col).ty));
                    }
                }
                found.ok_or_else(|| RelAlgError::UnknownColumn(c.column.clone()))
            }
        }
    }

    fn resolve_expr(&self, e: &Expr) -> Result<(Operand, Option<SqlType>), RelAlgError> {
        match e {
            Expr::Column(c) => {
                let (a, ty) = self.resolve_colref(c)?;
                Ok((Operand::attr(a), Some(ty)))
            }
            Expr::ColumnPlus(c, k) => {
                let (a, ty) = self.resolve_colref(c)?;
                if ty == SqlType::Varchar {
                    return Err(RelAlgError::TypeMismatch(format!(
                        "arithmetic on string column `{c}`"
                    )));
                }
                Ok((Operand::Attr { attr: a, offset: *k }, Some(ty)))
            }
            Expr::Int(i) => Ok((Operand::Const(Value::Int(*i)), None)),
            Expr::Str(s) => Ok((Operand::Const(Value::Str(s.clone())), None)),
            Expr::Float(_) => Err(RelAlgError::Unsupported(
                "floating-point literals (the constraint solver operates over integers; \
                 scale the schema to integer units)"
                    .into(),
            )),
        }
    }

    fn resolve_condition(
        &self,
        lhs: &Expr,
        op: CompareOp,
        rhs: &Expr,
    ) -> Result<Pred, RelAlgError> {
        let (l, lt) = self.resolve_expr(lhs)?;
        let (r, rt) = self.resolve_expr(rhs)?;
        // Type checks: attr vs attr comparability; string ordering is only
        // meaningful as =/<> (string values are dictionary-coded integers
        // in the solver).
        let str_involved = lt == Some(SqlType::Varchar)
            || rt == Some(SqlType::Varchar)
            || matches!(l, Operand::Const(Value::Str(_)))
            || matches!(r, Operand::Const(Value::Str(_)));
        if let (Some(a), Some(b)) = (lt, rt) {
            if !a.comparable_with(b) {
                return Err(RelAlgError::TypeMismatch(format!(
                    "cannot compare {a} with {b}"
                )));
            }
        }
        if str_involved {
            let num_involved = lt.map(SqlType::is_numeric).unwrap_or(false)
                || rt.map(SqlType::is_numeric).unwrap_or(false)
                || matches!(l, Operand::Const(Value::Int(_)))
                || matches!(r, Operand::Const(Value::Int(_)));
            if num_involved {
                return Err(RelAlgError::TypeMismatch("string compared with number".into()));
            }
            if !matches!(op, CompareOp::Eq | CompareOp::Ne) {
                return Err(RelAlgError::Unsupported(
                    "ordered comparison on strings (only = and <> are supported for \
                     string attributes)"
                        .into(),
                ));
            }
        }
        if matches!((&l, &r), (Operand::Const(_), Operand::Const(_))) {
            return Err(RelAlgError::Unsupported(
                "constant-vs-constant predicate (degenerate)".into(),
            ));
        }
        Ok(Pred { lhs: l, op, rhs: r })
    }

    fn resolve_select(&self, query: &Query) -> Result<SelectSpec, RelAlgError> {
        let has_agg = query.has_aggregates() || !query.having.is_empty();
        if !has_agg && query.group_by.is_empty() {
            if query.select.len() == 1 && query.select[0] == SelectItem::Star {
                return Ok(SelectSpec::Star);
            }
            let mut cols = Vec::new();
            for s in &query.select {
                match s {
                    SelectItem::Column(c) => cols.push(self.resolve_colref(c)?.0),
                    SelectItem::Star => {
                        return Err(RelAlgError::Unsupported(
                            "`*` mixed with explicit select items".into(),
                        ))
                    }
                    SelectItem::Aggregate { .. } => unreachable!("has_agg checked"),
                }
            }
            return Ok(SelectSpec::Columns(cols));
        }
        // Aggregation query.
        let mut group_by = Vec::new();
        for c in &query.group_by {
            group_by.push(self.resolve_colref(c)?.0);
        }
        let mut aggs = Vec::new();
        for s in &query.select {
            match s {
                SelectItem::Star => {
                    return Err(RelAlgError::BadAggregation("`*` with aggregates".into()))
                }
                SelectItem::Column(c) => {
                    let a = self.resolve_colref(c)?.0;
                    if !group_by.contains(&a) {
                        return Err(RelAlgError::BadAggregation(format!(
                            "non-aggregated column `{c}` not in GROUP BY"
                        )));
                    }
                }
                SelectItem::Aggregate { op, arg, distinct } => {
                    let arg = match arg {
                        Some(c) => {
                            let (a, ty) = self.resolve_colref(c)?;
                            if matches!(op, xdata_sql::AggOp::Sum | xdata_sql::AggOp::Avg)
                                && ty == SqlType::Varchar
                            {
                                return Err(RelAlgError::BadAggregation(format!(
                                    "{}({c}) on a string column",
                                    op.sql_name()
                                )));
                            }
                            Some(a)
                        }
                        None => None,
                    };
                    aggs.push(AggSpec {
                        func: crate::ir::AggFunc { op: *op, distinct: *distinct },
                        arg,
                    });
                }
            }
        }
        let mut having = Vec::new();
        for h in &query.having {
            let arg = match &h.arg {
                Some(c) => {
                    let (a, ty) = self.resolve_colref(c)?;
                    if matches!(h.op, xdata_sql::AggOp::Sum | xdata_sql::AggOp::Avg)
                        && ty == xdata_catalog::SqlType::Varchar
                    {
                        return Err(RelAlgError::BadAggregation(format!(
                            "HAVING {}({c}) on a string column",
                            h.op.sql_name()
                        )));
                    }
                    Some(a)
                }
                None => None,
            };
            having.push(crate::ir::HavingPred {
                func: crate::ir::AggFunc { op: h.op, distinct: h.distinct },
                arg,
                cmp: h.cmp,
                value: h.value,
            });
        }
        if aggs.is_empty() && having.is_empty() {
            return Err(RelAlgError::BadAggregation(
                "GROUP BY without aggregate functions".into(),
            ));
        }
        Ok(SelectSpec::Aggregation { group_by, aggs, having })
    }
}

fn collect_on_conds(tree: &JoinTree, out: &mut Vec<Pred>) {
    if let JoinTree::Node { left, right, conds, .. } = tree {
        out.extend(conds.iter().cloned());
        collect_on_conds(left, out);
        collect_on_conds(right, out);
    }
}

/// Union-find partitioning of attributes linked by plain equi-joins
/// (§IV-B); everything else is retained as a predicate.
fn pool_conditions(conds: &[Pred]) -> (Vec<Vec<AttrRef>>, Vec<Pred>) {
    let mut parent: BTreeMap<AttrRef, AttrRef> = BTreeMap::new();
    fn find(parent: &mut BTreeMap<AttrRef, AttrRef>, a: AttrRef) -> AttrRef {
        let p = *parent.entry(a).or_insert(a);
        if p == a {
            a
        } else {
            let root = find(parent, p);
            parent.insert(a, root);
            root
        }
    }
    let mut preds = Vec::new();
    for c in conds {
        if c.is_plain_equijoin() {
            let (a, b) = (
                c.lhs.attr_ref().expect("equijoin lhs is attr"),
                c.rhs.attr_ref().expect("equijoin rhs is attr"),
            );
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                parent.insert(ra, rb);
            }
        } else {
            preds.push(c.clone());
        }
    }
    let mut classes: BTreeMap<AttrRef, Vec<AttrRef>> = BTreeMap::new();
    let keys: Vec<AttrRef> = parent.keys().copied().collect();
    for a in keys {
        let r = find(&mut parent, a);
        classes.entry(r).or_default().push(a);
    }
    let mut eq_classes: Vec<Vec<AttrRef>> = classes
        .into_values()
        .filter(|c| c.len() >= 2)
        .map(|mut c| {
            c.sort_unstable();
            c
        })
        .collect();
    eq_classes.sort();
    // Dedup predicates (the same condition may appear in WHERE and ON).
    let mut seen: Vec<Pred> = Vec::new();
    for p in preds {
        if !seen.contains(&p) {
            seen.push(p);
        }
    }
    (eq_classes, seen)
}

/// Add WHERE join predicates to a fixed (outer-join) tree at the earliest
/// node where their relations meet, keeping ON conditions untouched.
fn place_where_preds(tree: &JoinTree, where_preds: &[Pred]) -> JoinTree {
    fn go(t: &JoinTree, preds: &[Pred]) -> JoinTree {
        match t {
            JoinTree::Leaf(i) => JoinTree::Leaf(*i),
            JoinTree::Node { kind, left, right, conds } => {
                let l = go(left, preds);
                let r = go(right, preds);
                let lm = l.leaf_mask();
                let rm = r.leaf_mask();
                let mut conds = conds.clone();
                for p in preds {
                    let occs = p.occurrences();
                    if occs.len() < 2 {
                        continue; // selections are applied at the leaves
                    }
                    let pm = occs.iter().fold(0u64, |m, o| m | (1 << o));
                    if pm & (lm | rm) == pm && pm & lm != 0 && pm & rm != 0 {
                        conds.push(p.clone());
                    }
                }
                JoinTree::Node { kind: *kind, left: Box::new(l), right: Box::new(r), conds }
            }
        }
    }
    go(tree, where_preds)
}

/// Assumption A7: every full outer join input must contribute at least one
/// select-list column, so a mutation's effect is observable in the output.
fn validate_full_outer_projection(q: &NormQuery) -> Result<(), RelAlgError> {
    let out_attrs: Vec<AttrRef> = match &q.select {
        SelectSpec::Star => return Ok(()), // every occurrence contributes
        SelectSpec::Columns(cols) => cols.clone(),
        SelectSpec::Aggregation { group_by, aggs, having } => {
            let mut v = group_by.clone();
            v.extend(aggs.iter().filter_map(|a| a.arg));
            v.extend(having.iter().filter_map(|h| h.arg));
            v
        }
    };
    fn walk(t: &JoinTree, out_attrs: &[AttrRef], q: &NormQuery) -> Result<(), RelAlgError> {
        if let JoinTree::Node { kind, left, right, .. } = t {
            if *kind == JoinKind::Full {
                for (side, name) in [(left, "left"), (right, "right")] {
                    let mask = side.leaf_mask();
                    if !out_attrs.iter().any(|a| mask & (1 << a.occ) != 0) {
                        return Err(RelAlgError::FullOuterJoinProjection(format!(
                            "{name} input {} of a full outer join",
                            side.display_with(
                                &q.occurrences.iter().map(|o| o.name.clone()).collect::<Vec<_>>()
                            )
                        )));
                    }
                }
            }
            walk(left, out_attrs, q)?;
            walk(right, out_attrs, q)?;
        }
        Ok(())
    }
    walk(&q.tree, &out_attrs, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdata_catalog::university;
    use xdata_sql::parse_query;

    fn norm(sql: &str) -> NormQuery {
        normalize(&parse_query(sql).unwrap(), &university::schema()).unwrap()
    }

    fn norm_err(sql: &str) -> RelAlgError {
        normalize(&parse_query(sql).unwrap(), &university::schema()).unwrap_err()
    }

    #[test]
    fn paper_intro_query() {
        let q = norm("SELECT * FROM instructor i, teaches t WHERE i.id = t.id");
        assert_eq!(q.occurrences.len(), 2);
        assert_eq!(q.eq_classes.len(), 1);
        assert_eq!(q.eq_classes[0].len(), 2);
        assert!(q.preds.is_empty());
        assert!(!q.has_outer);
        assert_eq!(q.select, SelectSpec::Star);
    }

    #[test]
    fn figure2_equivalence_class_forms() {
        // A.x = B.x AND B.x = C.x pools {A.x, B.x, C.x} — written either way.
        let q1 = norm(
            "SELECT * FROM instructor a, teaches b, advisor c \
             WHERE a.id = b.id AND b.id = c.s_id",
        );
        let q2 = norm(
            "SELECT * FROM instructor a, teaches b, advisor c \
             WHERE a.id = b.id AND a.id = c.s_id",
        );
        assert_eq!(q1.eq_classes, q2.eq_classes);
        assert_eq!(q1.eq_classes[0].len(), 3);
    }

    #[test]
    fn nonequi_join_retained_as_pred() {
        let q = norm("SELECT * FROM teaches b, course c WHERE b.course_id = c.course_id + 10");
        assert!(q.eq_classes.is_empty());
        assert_eq!(q.preds.len(), 1);
        assert!(!q.preds[0].is_selection());
    }

    #[test]
    fn selection_retained_and_classified() {
        let q = norm("SELECT * FROM instructor WHERE salary >= 50000 AND name = 'Wu'");
        assert_eq!(q.preds.len(), 2);
        assert!(q.preds.iter().all(Pred::is_selection));
    }

    #[test]
    fn repeated_relation_occurrences_distinct() {
        let q = norm("SELECT * FROM instructor a, instructor b WHERE a.dept_id = b.dept_id");
        assert_eq!(q.occurrences.len(), 2);
        assert_eq!(q.occurrences[0].base, "instructor");
        assert_eq!(q.occurrences[1].base, "instructor");
        assert_ne!(q.occurrences[0].name, q.occurrences[1].name);
    }

    #[test]
    fn duplicate_binding_rejected() {
        assert!(matches!(
            norm_err("SELECT * FROM instructor, instructor"),
            RelAlgError::DuplicateBinding(_)
        ));
    }

    #[test]
    fn unknown_and_ambiguous_columns() {
        assert!(matches!(
            norm_err("SELECT * FROM instructor WHERE nope = 3"),
            RelAlgError::UnknownColumn(_)
        ));
        // `name` exists in both instructor and student.
        assert!(matches!(
            norm_err("SELECT * FROM instructor, student WHERE name = 'Wu'"),
            RelAlgError::AmbiguousColumn(_)
        ));
    }

    #[test]
    fn string_ordering_rejected() {
        assert!(matches!(
            norm_err("SELECT * FROM instructor WHERE name < 'M'"),
            RelAlgError::Unsupported(_)
        ));
    }

    #[test]
    fn string_vs_number_rejected() {
        assert!(matches!(
            norm_err("SELECT * FROM instructor WHERE name = 5"),
            RelAlgError::TypeMismatch(_)
        ));
    }

    #[test]
    fn outer_join_keeps_on_conditions_at_node() {
        let q = norm(
            "SELECT i.name, t.course_id FROM instructor i LEFT OUTER JOIN teaches t \
             ON i.id = t.id WHERE i.salary > 50000",
        );
        assert!(q.has_outer);
        match &q.tree {
            JoinTree::Node { kind, conds, .. } => {
                assert_eq!(*kind, JoinKind::Left);
                assert_eq!(conds.len(), 1);
            }
            x => panic!("unexpected {x:?}"),
        }
        // The ON equi-join still pools into an equivalence class for the
        // generation algorithms.
        assert_eq!(q.eq_classes.len(), 1);
        // The WHERE selection is retained.
        assert_eq!(q.preds.len(), 1);
    }

    #[test]
    fn inner_tree_annotated_from_pool() {
        let q = norm(
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id",
        );
        // Left-deep tree ((i,t),c); the i–t link sits at the lower node.
        match &q.tree {
            JoinTree::Node { conds, left, .. } => {
                assert_eq!(conds.len(), 1); // t.course_id = c.course_id link
                match &**left {
                    JoinTree::Node { conds, .. } => assert_eq!(conds.len(), 1),
                    x => panic!("unexpected {x:?}"),
                }
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn full_outer_projection_validated() {
        // Only columns from the left input selected — violates A7.
        assert!(matches!(
            norm_err(
                "SELECT i.name FROM instructor i FULL OUTER JOIN teaches t ON i.id = t.id"
            ),
            RelAlgError::FullOuterJoinProjection(_)
        ));
        // Both sides contribute: fine.
        let q = norm(
            "SELECT i.name, t.course_id FROM instructor i FULL OUTER JOIN teaches t \
             ON i.id = t.id",
        );
        assert!(q.has_outer);
    }

    #[test]
    fn aggregation_resolves() {
        let q = norm(
            "SELECT dept_id, COUNT(DISTINCT id), SUM(salary) FROM instructor GROUP BY dept_id",
        );
        match &q.select {
            SelectSpec::Aggregation { group_by, aggs, .. } => {
                assert_eq!(group_by.len(), 1);
                assert_eq!(aggs.len(), 2);
                assert!(aggs[0].func.distinct);
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn aggregation_without_group_by() {
        let q = norm("SELECT COUNT(*) FROM teaches");
        match &q.select {
            SelectSpec::Aggregation { group_by, aggs, .. } => {
                assert!(group_by.is_empty());
                assert!(aggs[0].arg.is_none());
            }
            x => panic!("unexpected {x:?}"),
        }
    }

    #[test]
    fn non_grouped_column_rejected() {
        assert!(matches!(
            norm_err("SELECT name, COUNT(*) FROM instructor GROUP BY dept_id"),
            RelAlgError::BadAggregation(_)
        ));
    }

    #[test]
    fn float_literal_rejected_with_pointer() {
        assert!(matches!(
            norm_err("SELECT * FROM instructor WHERE salary > 3.5"),
            RelAlgError::Unsupported(_)
        ));
    }

    #[test]
    fn used_attrs_cover_everything() {
        let q = norm(
            "SELECT i.name FROM instructor i, teaches t \
             WHERE i.id = t.id AND i.salary > 1000",
        );
        let used = q.used_attrs();
        // i.id, t.id, i.salary, i.name
        assert_eq!(used.len(), 4);
    }
}
