//! Property tests for join-tree canonicalization: the canonical key must be
//! invariant under the semantic rewrites it claims to absorb — inner-join
//! commutativity and associativity, `A ⟖ B ≡ B ⟕ A`, full-outer-join
//! commutativity — and *sensitive* to everything else (leaf sets, kinds).

use proptest::prelude::*;
use xdata_relalg::JoinTree;
use xdata_sql::JoinKind;

/// Random join tree over `n` distinct leaves.
fn arb_tree(n: usize) -> impl Strategy<Value = JoinTree> {
    // Random permutation + random shape + random kinds, built recursively.
    (Just(n), proptest::sample::subsequence((0..n).collect::<Vec<_>>(), n))
        .prop_flat_map(|(n, leaves)| build(leaves, n as u32))
        .prop_map(|t| t)
}

fn build(leaves: Vec<usize>, seed: u32) -> BoxedStrategy<JoinTree> {
    if leaves.len() == 1 {
        return Just(JoinTree::Leaf(leaves[0])).boxed();
    }
    (1..leaves.len(), any::<u8>(), any::<u32>())
        .prop_flat_map(move |(split, kind, s2)| {
            let kind = match kind % 4 {
                0 => JoinKind::Inner,
                1 => JoinKind::Left,
                2 => JoinKind::Right,
                _ => JoinKind::Full,
            };
            let (l, r) = leaves.split_at(split);
            let (l, r) = (l.to_vec(), r.to_vec());
            (build(l, s2), build(r, s2.wrapping_add(1)))
                .prop_map(move |(lt, rt)| JoinTree::node(kind, lt, rt, vec![]))
        })
        .boxed()
}

/// Apply a random semantics-preserving rewrite at the root (if applicable).
fn commute(t: &JoinTree) -> Option<JoinTree> {
    match t {
        JoinTree::Node { kind, left, right, conds } => {
            let swapped_kind = match kind {
                JoinKind::Inner => JoinKind::Inner,
                JoinKind::Full => JoinKind::Full,
                JoinKind::Left => JoinKind::Right,
                JoinKind::Right => JoinKind::Left,
            };
            Some(JoinTree::Node {
                kind: swapped_kind,
                left: right.clone(),
                right: left.clone(),
                conds: conds.clone(),
            })
        }
        JoinTree::Leaf(_) => None,
    }
}

/// Rotate an inner-inner region: (a ⋈ b) ⋈ c → a ⋈ (b ⋈ c).
fn rotate_inner(t: &JoinTree) -> Option<JoinTree> {
    if let JoinTree::Node { kind: JoinKind::Inner, left, right, .. } = t {
        if let JoinTree::Node { kind: JoinKind::Inner, left: a, right: b, .. } = &**left {
            return Some(JoinTree::node(
                JoinKind::Inner,
                (**a).clone(),
                JoinTree::node(JoinKind::Inner, (**b).clone(), (**right).clone(), vec![]),
                vec![],
            ));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn key_invariant_under_commutation(t in arb_tree(4)) {
        if let Some(c) = commute(&t) {
            prop_assert_eq!(t.canonical_key(), c.canonical_key(), "commute changed key of {:?}", t);
        }
    }

    #[test]
    fn key_invariant_under_inner_rotation(t in arb_tree(4)) {
        if let Some(r) = rotate_inner(&t) {
            prop_assert_eq!(t.canonical_key(), r.canonical_key(), "rotation changed key of {:?}", t);
        }
    }

    #[test]
    fn key_distinguishes_kind_changes(t in arb_tree(3)) {
        // Changing the root kind between non-equivalent kinds must change
        // the key (Inner vs Left vs Full are semantically distinct).
        if let JoinTree::Node { kind, left, right, conds } = &t {
            for other in [JoinKind::Inner, JoinKind::Left, JoinKind::Full] {
                if other == *kind {
                    continue;
                }
                // Right is Left-with-swap; skip the Right/Left pairing when
                // children are symmetric... they never are here: distinct
                // leaf sequences.
                if (*kind == JoinKind::Right && other == JoinKind::Left)
                    || (*kind == JoinKind::Left && other == JoinKind::Right)
                {
                    continue;
                }
                let changed = JoinTree::Node {
                    kind: other,
                    left: left.clone(),
                    right: right.clone(),
                    conds: conds.clone(),
                };
                prop_assert_ne!(t.canonical_key(), changed.canonical_key());
            }
        }
    }

    #[test]
    fn key_embeds_leaf_set(t in arb_tree(4)) {
        let mut leaves = t.leaves();
        leaves.sort_unstable();
        let key = t.canonical_key();
        for l in leaves {
            prop_assert!(key.contains(&l.to_string()), "key {key} misses leaf {l}");
        }
    }
}
