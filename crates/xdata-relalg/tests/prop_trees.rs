//! Randomized tests for join-tree canonicalization: the canonical key must
//! be invariant under the semantic rewrites it claims to absorb —
//! inner-join commutativity and associativity, `A ⟖ B ≡ B ⟕ A`,
//! full-outer-join commutativity — and *sensitive* to everything else
//! (leaf sets, kinds). Seeded [`SplitMix64`] drives case generation.

use xdata_catalog::SplitMix64;
use xdata_relalg::JoinTree;
use xdata_sql::JoinKind;

/// Random join tree over `n` distinct leaves: random leaf permutation,
/// random shape, random join kinds.
fn random_tree(rng: &mut SplitMix64, n: usize) -> JoinTree {
    let mut leaves: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..leaves.len()).rev() {
        leaves.swap(i, rng.below(i + 1));
    }
    build(rng, &leaves)
}

fn build(rng: &mut SplitMix64, leaves: &[usize]) -> JoinTree {
    if leaves.len() == 1 {
        return JoinTree::Leaf(leaves[0]);
    }
    let split = 1 + rng.below(leaves.len() - 1);
    let kind = match rng.below(4) {
        0 => JoinKind::Inner,
        1 => JoinKind::Left,
        2 => JoinKind::Right,
        _ => JoinKind::Full,
    };
    let (l, r) = leaves.split_at(split);
    JoinTree::node(kind, build(rng, l), build(rng, r), vec![])
}

/// Apply a random semantics-preserving rewrite at the root (if applicable).
fn commute(t: &JoinTree) -> Option<JoinTree> {
    match t {
        JoinTree::Node { kind, left, right, conds } => {
            let swapped_kind = match kind {
                JoinKind::Inner => JoinKind::Inner,
                JoinKind::Full => JoinKind::Full,
                JoinKind::Left => JoinKind::Right,
                JoinKind::Right => JoinKind::Left,
            };
            Some(JoinTree::Node {
                kind: swapped_kind,
                left: right.clone(),
                right: left.clone(),
                conds: conds.clone(),
            })
        }
        JoinTree::Leaf(_) => None,
    }
}

/// Rotate an inner-inner region: (a ⋈ b) ⋈ c → a ⋈ (b ⋈ c).
fn rotate_inner(t: &JoinTree) -> Option<JoinTree> {
    if let JoinTree::Node { kind: JoinKind::Inner, left, right, .. } = t {
        if let JoinTree::Node { kind: JoinKind::Inner, left: a, right: b, .. } = &**left {
            return Some(JoinTree::node(
                JoinKind::Inner,
                (**a).clone(),
                JoinTree::node(JoinKind::Inner, (**b).clone(), (**right).clone(), vec![]),
                vec![],
            ));
        }
    }
    None
}

#[test]
fn key_invariant_under_commutation() {
    let mut rng = SplitMix64::new(0x7e111);
    for _ in 0..512 {
        let t = random_tree(&mut rng, 4);
        if let Some(c) = commute(&t) {
            assert_eq!(t.canonical_key(), c.canonical_key(), "commute changed key of {t:?}");
        }
    }
}

#[test]
fn key_invariant_under_inner_rotation() {
    let mut rng = SplitMix64::new(0x7e112);
    for _ in 0..512 {
        let t = random_tree(&mut rng, 4);
        if let Some(r) = rotate_inner(&t) {
            assert_eq!(t.canonical_key(), r.canonical_key(), "rotation changed key of {t:?}");
        }
    }
}

#[test]
fn key_distinguishes_kind_changes() {
    let mut rng = SplitMix64::new(0x7e113);
    for _ in 0..512 {
        let t = random_tree(&mut rng, 3);
        // Changing the root kind between non-equivalent kinds must change
        // the key (Inner vs Left vs Full are semantically distinct).
        if let JoinTree::Node { kind, left, right, conds } = &t {
            for other in [JoinKind::Inner, JoinKind::Left, JoinKind::Full] {
                if other == *kind {
                    continue;
                }
                // Right is Left-with-swap; skip the Right/Left pairing when
                // children are symmetric... they never are here: distinct
                // leaf sequences.
                if (*kind == JoinKind::Right && other == JoinKind::Left)
                    || (*kind == JoinKind::Left && other == JoinKind::Right)
                {
                    continue;
                }
                let changed = JoinTree::Node {
                    kind: other,
                    left: left.clone(),
                    right: right.clone(),
                    conds: conds.clone(),
                };
                assert_ne!(t.canonical_key(), changed.canonical_key());
            }
        }
    }
}

#[test]
fn key_embeds_leaf_set() {
    let mut rng = SplitMix64::new(0x7e114);
    for _ in 0..512 {
        let t = random_tree(&mut rng, 4);
        let mut leaves = t.leaves();
        leaves.sort_unstable();
        let key = t.canonical_key();
        for l in leaves {
            assert!(key.contains(&l.to_string()), "key {key} misses leaf {l}");
        }
    }
}
