//! Property tests for the incremental difference-logic theory: push/pop
//! discipline and consistency verdicts against a brute-force oracle.

use proptest::prelude::*;
use xdata_solver::theory::{Bound, DiffLogic};

const NVARS: u32 = 4;
const DOM: i64 = 4;

/// Oracle: is the conjunction of bounds satisfiable over 0..=DOM per var?
/// (Difference systems over a bounded box; sufficient for w ∈ [-3, 3] and
/// ≤4 variables since any satisfiable system has a solution in a window of
/// width ≤ Σ|w| ≤ 12 ≥... we simply test satisfiability over a wide box
/// [-16, 16] which is safe for these sizes.)
fn brute_sat(bounds: &[(u32, u32, i64)]) -> bool {
    const LO: i64 = -16;
    const HI: i64 = 16;
    let n = NVARS as usize;
    let mut vals = vec![LO; n];
    loop {
        if bounds.iter().all(|(u, v, w)| vals[*v as usize] - vals[*u as usize] <= *w) {
            return true;
        }
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            vals[i] += 1;
            if vals[i] <= HI {
                break;
            }
            vals[i] = LO;
            i += 1;
        }
    }
}

fn arb_bound() -> impl Strategy<Value = (u32, u32, i64)> {
    (0..NVARS, 0..NVARS, -3i64..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Asserting a sequence of bounds reports UNSAT exactly when the
    /// accepted prefix plus the new bound is infeasible, and the final
    /// model satisfies every accepted bound.
    #[test]
    fn incremental_consistency_matches_oracle(bounds in prop::collection::vec(arb_bound(), 1..10)) {
        let mut th = DiffLogic::new(NVARS);
        let mut accepted: Vec<(u32, u32, i64)> = Vec::new();
        for (u, v, w) in bounds {
            let ok = th.assert_bound(Bound { u, v, w });
            let mut candidate = accepted.clone();
            candidate.push((u, v, w));
            let feasible = brute_sat(&candidate);
            prop_assert_eq!(ok, feasible, "bound ({},{},{}) after {:?}", u, v, w, accepted);
            if ok {
                accepted = candidate;
            }
        }
        let m = th.model();
        for (u, v, w) in &accepted {
            prop_assert!(
                m[*v as usize] - m[*u as usize] <= *w,
                "model violates accepted bound: {m:?} vs ({u},{v},{w})"
            );
        }
    }

    /// push/pop restores exactly the pre-push state: post-pop models
    /// satisfy the outer bounds, and bounds rejected inside the frame do
    /// not constrain afterwards.
    #[test]
    fn push_pop_is_transparent(
        outer in prop::collection::vec(arb_bound(), 0..5),
        inner in prop::collection::vec(arb_bound(), 0..5),
    ) {
        let mut th = DiffLogic::new(NVARS);
        let mut kept = Vec::new();
        for (u, v, w) in outer {
            if th.assert_bound(Bound { u, v, w }) {
                kept.push((u, v, w));
            }
        }
        let before = th.model();
        th.push_level();
        for (u, v, w) in inner {
            let _ = th.assert_bound(Bound { u, v, w });
        }
        th.pop_level();
        prop_assert_eq!(th.model(), before, "pop must restore the model");
        for (u, v, w) in &kept {
            let m = th.model();
            prop_assert!(m[*v as usize] - m[*u as usize] <= *w);
        }
    }
}
