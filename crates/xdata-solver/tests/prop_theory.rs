//! Randomized tests for the incremental difference-logic theory: push/pop
//! discipline and consistency verdicts against a brute-force oracle.
//! Seeded [`SplitMix64`] drives the case generation, so runs are
//! reproducible and fully offline.

use xdata_catalog::SplitMix64;
use xdata_solver::theory::{Bound, DiffLogic};

const NVARS: u32 = 4;

/// Oracle: is the conjunction of bounds satisfiable over a bounded box?
/// (Difference systems over [-16, 16] per variable; safe for w ∈ [-3, 3]
/// and ≤4 variables since any satisfiable system of that size has a
/// solution within a window of width Σ|w| ≤ 12.)
fn brute_sat(bounds: &[(u32, u32, i64)]) -> bool {
    const LO: i64 = -16;
    const HI: i64 = 16;
    let n = NVARS as usize;
    let mut vals = vec![LO; n];
    loop {
        if bounds.iter().all(|(u, v, w)| vals[*v as usize] - vals[*u as usize] <= *w) {
            return true;
        }
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            vals[i] += 1;
            if vals[i] <= HI {
                break;
            }
            vals[i] = LO;
            i += 1;
        }
    }
}

fn random_bound(rng: &mut SplitMix64) -> (u32, u32, i64) {
    (rng.below(NVARS as usize) as u32, rng.below(NVARS as usize) as u32, rng.range_i64(-3, 3))
}

fn random_bounds(rng: &mut SplitMix64, min: usize, max: usize) -> Vec<(u32, u32, i64)> {
    let len = min + rng.below(max - min + 1);
    (0..len).map(|_| random_bound(rng)).collect()
}

/// Asserting a sequence of bounds reports UNSAT exactly when the accepted
/// prefix plus the new bound is infeasible, and the final model satisfies
/// every accepted bound.
#[test]
fn incremental_consistency_matches_oracle() {
    let mut rng = SplitMix64::new(0x7ee011);
    for case in 0..256 {
        let bounds = random_bounds(&mut rng, 1, 9);
        let mut th = DiffLogic::new(NVARS);
        let mut accepted: Vec<(u32, u32, i64)> = Vec::new();
        for (u, v, w) in bounds {
            let ok = th.assert_bound(Bound { u, v, w });
            let mut candidate = accepted.clone();
            candidate.push((u, v, w));
            let feasible = brute_sat(&candidate);
            assert_eq!(
                ok, feasible,
                "case {case}: bound ({u},{v},{w}) after {accepted:?}"
            );
            if ok {
                accepted = candidate;
            }
        }
        let m = th.model();
        for (u, v, w) in &accepted {
            assert!(
                m[*v as usize] - m[*u as usize] <= *w,
                "case {case}: model violates accepted bound: {m:?} vs ({u},{v},{w})"
            );
        }
    }
}

/// push/pop restores exactly the pre-push state: post-pop models satisfy
/// the outer bounds, and bounds rejected inside the frame do not constrain
/// afterwards.
#[test]
fn push_pop_is_transparent() {
    let mut rng = SplitMix64::new(0x7ee022);
    for case in 0..256 {
        let outer = random_bounds(&mut rng, 0, 4);
        let inner = random_bounds(&mut rng, 0, 4);
        let mut th = DiffLogic::new(NVARS);
        let mut kept = Vec::new();
        for (u, v, w) in outer {
            if th.assert_bound(Bound { u, v, w }) {
                kept.push((u, v, w));
            }
        }
        let before = th.model();
        th.push_level();
        for (u, v, w) in inner {
            let _ = th.assert_bound(Bound { u, v, w });
        }
        th.pop_level();
        assert_eq!(th.model(), before, "case {case}: pop must restore the model");
        for (u, v, w) in &kept {
            let m = th.model();
            assert!(m[*v as usize] - m[*u as usize] <= *w, "case {case}");
        }
    }
}
