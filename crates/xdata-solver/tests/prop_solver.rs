//! Property-based tests: the DPLL(T) solver against a brute-force oracle.
//!
//! Strategy: generate random formulas over a small variable set, conjoin
//! tight domain bounds (`0 ≤ v ≤ 3`), and compare the solver's verdict with
//! exhaustive enumeration of all assignments. This checks *both* soundness
//! (SAT models really satisfy the formula — also asserted directly) and
//! completeness (UNSAT only when no assignment exists — the property the
//! paper's "equivalent mutant" detection rests on).

use proptest::prelude::*;
use xdata_solver::atom::Term;
use xdata_solver::eval::eval;
use xdata_solver::formula::Formula;
use xdata_solver::ids::ArrayId;
use xdata_solver::{Mode, Problem, RelOp, SolveOutcome};

const NVARS: u32 = 4;
const DOM: i64 = 3; // values 0..=3

fn term(var: u32, offset: i64) -> Term {
    Term::field(ArrayId(0), 0, var).plus(offset)
}

fn arb_relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Eq),
        Just(RelOp::Ne),
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
    ]
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    (0..NVARS, arb_relop(), 0..NVARS, -2i64..=2, prop::bool::ANY, 0..=DOM).prop_map(
        |(a, op, b, off, vs_const, c)| {
            if vs_const {
                Formula::atom(term(a, 0), op, Term::Const(c))
            } else {
                Formula::atom(term(a, 0), op, term(b, off))
            }
        },
    )
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_atom().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Formula::or),
            inner.prop_map(Formula::not),
        ]
    })
}

/// Build the problem: one array of 1 tuple with NVARS fields, domain bounds
/// plus the random formula.
fn problem_for(f: &Formula) -> Problem {
    let mut p = Problem::new();
    let a = p.add_array("r", 1, NVARS);
    for v in 0..NVARS {
        p.assert(Formula::atom(Term::field(a, 0, v), RelOp::Ge, Term::Const(0)));
        p.assert(Formula::atom(Term::field(a, 0, v), RelOp::Le, Term::Const(DOM)));
    }
    p.assert(f.clone());
    p
}

/// Exhaustive oracle over the bounded domain.
fn brute_force_sat(f: &Formula, vars: &xdata_solver::VarTable) -> bool {
    let n = NVARS as usize;
    let mut model = vec![0i64; n];
    loop {
        if eval(f, &model, vars) {
            return true;
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            model[i] += 1;
            if model[i] <= DOM {
                break;
            }
            model[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force(f in arb_formula()) {
        let p = problem_for(&f);
        let vars = p.var_table();
        let (out, _) = p.solve(Mode::Unfold);
        let oracle = brute_force_sat(&f, &vars);
        match out {
            SolveOutcome::Sat(m) => {
                prop_assert!(oracle, "solver SAT but oracle UNSAT for {f}");
                prop_assert!(eval(&f, m.values(), &vars), "model does not satisfy {f}");
                // Domain bounds respected too.
                for v in 0..NVARS as usize {
                    prop_assert!((0..=DOM).contains(&m.values()[v]));
                }
            }
            SolveOutcome::Unsat => prop_assert!(!oracle, "solver UNSAT but oracle SAT for {f}"),
            SolveOutcome::Unknown => prop_assert!(false, "unexpected Unknown"),
        }
    }

    #[test]
    fn lazy_and_unfold_agree(f in arb_formula()) {
        let p = problem_for(&f);
        let (a, _) = p.solve(Mode::Unfold);
        let (b, _) = p.solve(Mode::Lazy);
        prop_assert_eq!(a.is_sat(), b.is_sat(), "modes disagree on {}", f);
    }
}

// Quantified round-trip: random per-slot target values; constraints force
// each slot to its target via a FORALL over bounds plus per-slot pins;
// both modes must find it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantified_pin_down(targets in prop::collection::vec(0..=DOM, 1..4)) {
        let mut p = Problem::new();
        let len = targets.len() as u32;
        let a = p.add_array("r", len, 1);
        // ∀i: r[i].0 ≥ 0 ∧ r[i].0 ≤ DOM
        let q = p.fresh_qvar();
        p.assert(Formula::forall(q, a, Formula::and([
            Formula::atom(Term::qfield(a, q, 0), RelOp::Ge, Term::Const(0)),
            Formula::atom(Term::qfield(a, q, 0), RelOp::Le, Term::Const(DOM)),
        ])));
        // Pin each slot.
        for (i, t) in targets.iter().enumerate() {
            p.assert(Formula::atom(Term::field(a, i as u32, 0), RelOp::Eq, Term::Const(*t)));
        }
        for mode in [Mode::Unfold, Mode::Lazy] {
            let (out, _) = p.solve(mode);
            match out {
                SolveOutcome::Sat(m) => {
                    for (i, t) in targets.iter().enumerate() {
                        prop_assert_eq!(m.get(a, i as u32, 0), *t);
                    }
                }
                o => prop_assert!(false, "mode {:?}: unexpected {:?}", mode, o),
            }
        }
    }
}
