//! Randomized tests: the DPLL(T) solver against a brute-force oracle.
//!
//! Strategy: generate random formulas over a small variable set with a
//! seeded [`SplitMix64`], conjoin tight domain bounds (`0 ≤ v ≤ 3`), and
//! compare the solver's verdict with exhaustive enumeration of all
//! assignments. This checks *both* soundness (SAT models really satisfy
//! the formula — also asserted directly) and completeness (UNSAT only when
//! no assignment exists — the property the paper's "equivalent mutant"
//! detection rests on).

use xdata_catalog::SplitMix64;
use xdata_solver::atom::Term;
use xdata_solver::eval::eval;
use xdata_solver::formula::Formula;
use xdata_solver::ids::ArrayId;
use xdata_solver::{Mode, Problem, RelOp, SolveOutcome};

const NVARS: u32 = 4;
const DOM: i64 = 3; // values 0..=3

fn term(var: u32, offset: i64) -> Term {
    Term::field(ArrayId(0), 0, var).plus(offset)
}

const RELOPS: [RelOp; 6] =
    [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge];

fn random_atom(rng: &mut SplitMix64) -> Formula {
    let a = rng.below(NVARS as usize) as u32;
    let op = *rng.pick(&RELOPS);
    if rng.bool() {
        Formula::atom(term(a, 0), op, Term::Const(rng.range_i64(0, DOM)))
    } else {
        let b = rng.below(NVARS as usize) as u32;
        Formula::atom(term(a, 0), op, term(b, rng.range_i64(-2, 2)))
    }
}

/// Random formula of nesting depth ≤ `depth`: AND/OR over 1–3 children or
/// a negation, bottoming out at atoms — the same shape space the proptest
/// recursive strategy explored.
fn random_formula(rng: &mut SplitMix64, depth: u32) -> Formula {
    if depth == 0 || rng.chance(1, 3) {
        return random_atom(rng);
    }
    match rng.below(3) {
        0 => Formula::and((0..1 + rng.below(3)).map(|_| random_formula(rng, depth - 1))),
        1 => Formula::or((0..1 + rng.below(3)).map(|_| random_formula(rng, depth - 1))),
        _ => Formula::not(random_formula(rng, depth - 1)),
    }
}

/// Build the problem: one array of 1 tuple with NVARS fields, domain bounds
/// plus the random formula.
fn problem_for(f: &Formula) -> Problem {
    let mut p = Problem::new();
    let a = p.add_array("r", 1, NVARS);
    for v in 0..NVARS {
        p.assert(Formula::atom(Term::field(a, 0, v), RelOp::Ge, Term::Const(0)));
        p.assert(Formula::atom(Term::field(a, 0, v), RelOp::Le, Term::Const(DOM)));
    }
    p.assert(f.clone());
    p
}

/// Exhaustive oracle over the bounded domain.
fn brute_force_sat(f: &Formula, vars: &xdata_solver::VarTable) -> bool {
    let n = NVARS as usize;
    let mut model = vec![0i64; n];
    loop {
        if eval(f, &model, vars) {
            return true;
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            model[i] += 1;
            if model[i] <= DOM {
                break;
            }
            model[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn solver_matches_brute_force() {
    let mut rng = SplitMix64::new(0x501e1);
    for case in 0..256 {
        let f = random_formula(&mut rng, 3);
        let p = problem_for(&f);
        let vars = p.var_table();
        let (out, _) = p.solve(Mode::Unfold);
        let oracle = brute_force_sat(&f, &vars);
        match out {
            SolveOutcome::Sat(m) => {
                assert!(oracle, "case {case}: solver SAT but oracle UNSAT for {f}");
                assert!(eval(&f, m.values(), &vars), "case {case}: model does not satisfy {f}");
                // Domain bounds respected too.
                for v in 0..NVARS as usize {
                    assert!((0..=DOM).contains(&m.values()[v]), "case {case}");
                }
            }
            SolveOutcome::Unsat => {
                assert!(!oracle, "case {case}: solver UNSAT but oracle SAT for {f}")
            }
            SolveOutcome::Unknown => panic!("case {case}: unexpected Unknown"),
            SolveOutcome::Cancelled => panic!("case {case}: unexpected Cancelled"),
        }
    }
}

#[test]
fn lazy_and_unfold_agree() {
    let mut rng = SplitMix64::new(0x501e2);
    for case in 0..256 {
        let f = random_formula(&mut rng, 3);
        let p = problem_for(&f);
        let (a, _) = p.solve(Mode::Unfold);
        let (b, _) = p.solve(Mode::Lazy);
        assert_eq!(a.is_sat(), b.is_sat(), "case {case}: modes disagree on {f}");
    }
}

/// Quantified round-trip: random per-slot target values; constraints force
/// each slot to its target via a FORALL over bounds plus per-slot pins;
/// both modes must find it.
#[test]
fn quantified_pin_down() {
    let mut rng = SplitMix64::new(0x501e3);
    for case in 0..64 {
        let targets: Vec<i64> =
            (0..1 + rng.below(3)).map(|_| rng.range_i64(0, DOM)).collect();
        let mut p = Problem::new();
        let len = targets.len() as u32;
        let a = p.add_array("r", len, 1);
        // ∀i: r[i].0 ≥ 0 ∧ r[i].0 ≤ DOM
        let q = p.fresh_qvar();
        p.assert(Formula::forall(
            q,
            a,
            Formula::and([
                Formula::atom(Term::qfield(a, q, 0), RelOp::Ge, Term::Const(0)),
                Formula::atom(Term::qfield(a, q, 0), RelOp::Le, Term::Const(DOM)),
            ]),
        ));
        // Pin each slot.
        for (i, t) in targets.iter().enumerate() {
            p.assert(Formula::atom(Term::field(a, i as u32, 0), RelOp::Eq, Term::Const(*t)));
        }
        for mode in [Mode::Unfold, Mode::Lazy] {
            let (out, _) = p.solve(mode);
            match out {
                SolveOutcome::Sat(m) => {
                    for (i, t) in targets.iter().enumerate() {
                        assert_eq!(m.get(a, i as u32, 0), *t, "case {case}");
                    }
                }
                o => panic!("case {case}: mode {mode:?}: unexpected {o:?}"),
            }
        }
    }
}
