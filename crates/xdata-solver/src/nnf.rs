//! Negation normal form and disequality elimination.
//!
//! The DPLL search asserts atoms *positively* into the difference-logic
//! theory, so after NNF we additionally rewrite every `≠` atom (and every
//! negated `=` as produced by NNF) into `< ∨ >` — integer disequality is
//! exactly that disjunction, and `<`, `>`, `≤`, `≥`, `=` all map directly to
//! difference edges. After [`to_nnf`]:
//!
//! * `Not` appears nowhere,
//! * no atom uses [`RelOp::Ne`],
//! * quantifiers may remain (they commute with NNF: `¬∀ ⇒ ∃¬`, `¬∃ ⇒ ∀¬`).

use crate::atom::{Atom, RelOp};
use crate::formula::Formula;

/// Rewrite `f` into negation normal form without `≠` atoms.
pub fn to_nnf(f: &Formula) -> Formula {
    nnf(f, false)
}

fn nnf(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom(a) => {
            let a = if neg { a.negate() } else { *a };
            split_ne(a)
        }
        Formula::And(xs) => {
            let parts = xs.iter().map(|x| nnf(x, neg));
            if neg {
                Formula::or(parts)
            } else {
                Formula::and(parts)
            }
        }
        Formula::Or(xs) => {
            let parts = xs.iter().map(|x| nnf(x, neg));
            if neg {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        Formula::Not(x) => nnf(x, !neg),
        Formula::Forall { qv, array, body } => {
            let b = nnf(body, neg);
            if neg {
                Formula::exists(*qv, *array, b)
            } else {
                Formula::forall(*qv, *array, b)
            }
        }
        Formula::Exists { qv, array, body } => {
            let b = nnf(body, neg);
            if neg {
                Formula::forall(*qv, *array, b)
            } else {
                Formula::exists(*qv, *array, b)
            }
        }
    }
}

/// `a ≠ b  ⇒  a < b ∨ a > b`; all other operators pass through.
fn split_ne(a: Atom) -> Formula {
    if a.op == RelOp::Ne {
        Formula::or([
            Formula::Atom(Atom::new(a.lhs, RelOp::Lt, a.rhs)),
            Formula::Atom(Atom::new(a.lhs, RelOp::Gt, a.rhs)),
        ])
    } else {
        Formula::Atom(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Term;
    use crate::ids::{ArrayId, QVarId};

    fn x() -> Term {
        Term::field(ArrayId(0), 0, 0)
    }

    fn contains_not(f: &Formula) -> bool {
        match f {
            Formula::Not(_) => true,
            Formula::And(xs) | Formula::Or(xs) => xs.iter().any(contains_not),
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => contains_not(body),
            _ => false,
        }
    }

    fn contains_ne(f: &Formula) -> bool {
        match f {
            Formula::Atom(a) => a.op == RelOp::Ne,
            Formula::And(xs) | Formula::Or(xs) => xs.iter().any(contains_ne),
            Formula::Not(x) => contains_ne(x),
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => contains_ne(body),
            _ => false,
        }
    }

    #[test]
    fn negation_pushed_to_atoms() {
        let f = Formula::not(Formula::and([
            Formula::atom(x(), RelOp::Lt, Term::Const(5)),
            Formula::atom(x(), RelOp::Ge, Term::Const(1)),
        ]));
        let g = to_nnf(&f);
        assert!(!contains_not(&g));
        // ¬(x<5 ∧ x≥1) = (x≥5 ∨ x<1)
        match g {
            Formula::Or(xs) => assert_eq!(xs.len(), 2),
            x => panic!("unexpected {x}"),
        }
    }

    #[test]
    fn ne_split_into_lt_gt() {
        let f = Formula::atom(x(), RelOp::Ne, Term::Const(3));
        let g = to_nnf(&f);
        assert!(!contains_ne(&g));
        match g {
            Formula::Or(xs) => {
                assert_eq!(xs.len(), 2);
            }
            x => panic!("unexpected {x}"),
        }
    }

    #[test]
    fn negated_eq_becomes_lt_or_gt() {
        let f = Formula::not(Formula::atom(x(), RelOp::Eq, Term::Const(3)));
        let g = to_nnf(&f);
        assert!(!contains_ne(&g));
        assert!(!contains_not(&g));
    }

    #[test]
    fn not_exists_becomes_forall_negated_body() {
        let q = QVarId(0);
        let body = Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Eq, Term::Const(5));
        let f = Formula::not_exists(q, ArrayId(0), body);
        let g = to_nnf(&f);
        match &g {
            Formula::Forall { body, .. } => {
                // ¬(x = 5) → (x < 5 ∨ x > 5)
                assert!(matches!(**body, Formula::Or(_)));
            }
            x => panic!("unexpected {x}"),
        }
    }

    #[test]
    fn nnf_of_constants() {
        assert_eq!(to_nnf(&Formula::not(Formula::True)), Formula::False);
        assert_eq!(to_nnf(&Formula::not(Formula::False)), Formula::True);
    }
}
