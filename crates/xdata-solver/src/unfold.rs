//! Quantifier unfolding (§VI-B of the paper).
//!
//! Bounded quantifiers range over tuple-array indices, so they can be
//! "unfolded ... by replacing a quantified expression by a conjunction or
//! disjunction of expressions on each array index value". The paper reports
//! this speeds CVC3 up by a factor of 6–85; our benchmarks reproduce the
//! same contrast against the lazy-instantiation mode.

use crate::formula::Formula;
use crate::ids::VarTable;

/// Replace every quantifier in `f` by its finite expansion over the array
/// lengths recorded in `vars`. The result is ground (quantifier-free).
pub fn unfold(f: &Formula, vars: &VarTable) -> Formula {
    let mut expansions = 0u64;
    let g = unfold_counting(f, vars, &mut expansions);
    if expansions > 0 {
        // One count per quantifier node expanded (nested quantifiers count
        // once per instantiated copy); no-op without a metrics sink.
        xdata_obs::counter("solver.unfold_expansions", expansions);
    }
    g
}

fn unfold_counting(f: &Formula, vars: &VarTable, expansions: &mut u64) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(*a),
        Formula::And(xs) => Formula::and(xs.iter().map(|x| unfold_counting(x, vars, expansions))),
        Formula::Or(xs) => Formula::or(xs.iter().map(|x| unfold_counting(x, vars, expansions))),
        Formula::Not(x) => Formula::not(unfold_counting(x, vars, expansions)),
        Formula::Forall { qv, array, body } => {
            let len = vars.spec(*array).len;
            *expansions += 1;
            Formula::and((0..len).map(|i| unfold_counting(&body.subst(*qv, i), vars, expansions)))
        }
        Formula::Exists { qv, array, body } => {
            let len = vars.spec(*array).len;
            *expansions += 1;
            Formula::or((0..len).map(|i| unfold_counting(&body.subst(*qv, i), vars, expansions)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RelOp, Term};
    use crate::ids::{ArrayId, ArraySpec, QVarId};

    fn vars() -> VarTable {
        VarTable::new(&[
            ArraySpec { name: "r".into(), len: 3, fields: 1 },
            ArraySpec { name: "s".into(), len: 2, fields: 1 },
        ])
    }

    #[test]
    fn exists_unfolds_to_or_over_len() {
        let q = QVarId(0);
        let f = Formula::exists(
            q,
            ArrayId(0),
            Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Eq, Term::Const(5)),
        );
        let g = unfold(&f, &vars());
        match g {
            Formula::Or(xs) => assert_eq!(xs.len(), 3),
            x => panic!("unexpected {x}"),
        }
        assert!(!unfold(&f, &vars()).has_quantifier());
    }

    #[test]
    fn forall_unfolds_to_and_over_len() {
        let q = QVarId(0);
        let f = Formula::forall(
            q,
            ArrayId(1),
            Formula::atom(Term::qfield(ArrayId(1), q, 0), RelOp::Ge, Term::Const(0)),
        );
        match unfold(&f, &vars()) {
            Formula::And(xs) => assert_eq!(xs.len(), 2),
            x => panic!("unexpected {x}"),
        }
    }

    #[test]
    fn nested_forall_exists_unfolds_fully() {
        // ∀i∈r ∃j∈s : r[i].0 = s[j].0 — the foreign-key shape of §V-B.
        let qi = QVarId(0);
        let qj = QVarId(1);
        let f = Formula::forall(
            qi,
            ArrayId(0),
            Formula::exists(
                qj,
                ArrayId(1),
                Formula::atom(
                    Term::qfield(ArrayId(0), qi, 0),
                    RelOp::Eq,
                    Term::qfield(ArrayId(1), qj, 0),
                ),
            ),
        );
        let g = unfold(&f, &vars());
        assert!(!g.has_quantifier());
        // 3 conjuncts, each a disjunction of 2 equalities.
        match g {
            Formula::And(xs) => {
                assert_eq!(xs.len(), 3);
                for x in xs {
                    match x {
                        Formula::Or(ys) => assert_eq!(ys.len(), 2),
                        y => panic!("unexpected {y}"),
                    }
                }
            }
            x => panic!("unexpected {x}"),
        }
    }

    #[test]
    fn exists_over_empty_array_is_false() {
        let vt = VarTable::new(&[ArraySpec { name: "r".into(), len: 0, fields: 1 }]);
        let q = QVarId(0);
        let f = Formula::exists(
            q,
            ArrayId(0),
            Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Eq, Term::Const(5)),
        );
        assert_eq!(unfold(&f, &vt), Formula::False);
        let g = Formula::forall(
            q,
            ArrayId(0),
            Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Eq, Term::Const(5)),
        );
        assert_eq!(unfold(&g, &vt), Formula::True);
    }
}
