//! Constraint formulas with boolean structure and bounded quantifiers.

use std::fmt;

use crate::atom::{Atom, RelOp, Term};
use crate::ids::{ArrayId, QVarId};

/// A constraint formula.
///
/// Quantifiers range over the tuple indices `0..len` of one array, mirroring
/// the paper's CVC3 constraints like
/// `ASSERT NOT EXISTS (i : B_INT) : (B[i].0 = C[1].0 + 10)` (§V-D).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    True,
    False,
    Atom(Atom),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Not(Box<Formula>),
    Forall { qv: QVarId, array: ArrayId, body: Box<Formula> },
    Exists { qv: QVarId, array: ArrayId, body: Box<Formula> },
}

impl Formula {
    pub fn atom(lhs: Term, op: RelOp, rhs: Term) -> Formula {
        Formula::Atom(Atom::new(lhs, op, rhs))
    }

    /// Conjunction that flattens nested `And`s and short-circuits constants.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(xs) => out.extend(xs),
                x => out.push(x),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction that flattens nested `Or`s and short-circuits constants.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(xs) => out.extend(xs),
                x => out.push(x),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Negation that folds constants and cancels double negation. An
    /// inherent method (not [`std::ops::Not`]) so `Formula::not(f)` path
    /// calls keep working across the workspace.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            x => Formula::Not(Box::new(x)),
        }
    }

    pub fn forall(qv: QVarId, array: ArrayId, body: Formula) -> Formula {
        Formula::Forall { qv, array, body: Box::new(body) }
    }

    pub fn exists(qv: QVarId, array: ArrayId, body: Formula) -> Formula {
        Formula::Exists { qv, array, body: Box::new(body) }
    }

    /// `NOT EXISTS i: body` — the nullification constraint of §V.
    pub fn not_exists(qv: QVarId, array: ArrayId, body: Formula) -> Formula {
        Formula::not(Formula::exists(qv, array, body))
    }

    /// Substitute quantified index `qv` with concrete slot `i` (capture is
    /// impossible because every quantifier carries a globally fresh
    /// [`QVarId`]).
    pub fn subst(&self, qv: QVarId, i: u32) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(a.subst(qv, i)),
            Formula::And(xs) => Formula::And(xs.iter().map(|x| x.subst(qv, i)).collect()),
            Formula::Or(xs) => Formula::Or(xs.iter().map(|x| x.subst(qv, i)).collect()),
            Formula::Not(x) => Formula::Not(Box::new(x.subst(qv, i))),
            Formula::Forall { qv: q, array, body } => Formula::Forall {
                qv: *q,
                array: *array,
                body: Box::new(body.subst(qv, i)),
            },
            Formula::Exists { qv: q, array, body } => Formula::Exists {
                qv: *q,
                array: *array,
                body: Box::new(body.subst(qv, i)),
            },
        }
    }

    /// Whether the formula contains any quantifier.
    pub fn has_quantifier(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => false,
            Formula::And(xs) | Formula::Or(xs) => xs.iter().any(Formula::has_quantifier),
            Formula::Not(x) => x.has_quantifier(),
            Formula::Forall { .. } | Formula::Exists { .. } => true,
        }
    }

    /// Number of atoms (diagnostic / stats).
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Atom(_) => 1,
            Formula::And(xs) | Formula::Or(xs) => xs.iter().map(Formula::atom_count).sum(),
            Formula::Not(x) => x.atom_count(),
            Formula::Forall { body, .. } | Formula::Exists { body, .. } => body.atom_count(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("TRUE"),
            Formula::False => f.write_str("FALSE"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(xs) => {
                f.write_str("(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
            Formula::Or(xs) => {
                f.write_str("(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
            Formula::Not(x) => write!(f, "NOT {x}"),
            Formula::Forall { qv, array, body } => {
                write!(f, "FORALL ({qv} : {array}) : {body}")
            }
            Formula::Exists { qv, array, body } => {
                write!(f, "EXISTS ({qv} : {array}) : {body}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(k: i64) -> Formula {
        Formula::atom(Term::field(ArrayId(0), 0, 0), RelOp::Eq, Term::Const(k))
    }

    #[test]
    fn and_flattens_and_short_circuits() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::and([Formula::True, Formula::True]), Formula::True);
        assert_eq!(Formula::and([atom(1), Formula::False]), Formula::False);
        let f = Formula::and([Formula::and([atom(1), atom(2)]), atom(3)]);
        match f {
            Formula::And(xs) => assert_eq!(xs.len(), 3),
            x => panic!("expected flat And, got {x}"),
        }
    }

    #[test]
    fn or_flattens_and_short_circuits() {
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(Formula::or([atom(1), Formula::True]), Formula::True);
        let f = Formula::or([Formula::or([atom(1), atom(2)]), atom(3)]);
        match f {
            Formula::Or(xs) => assert_eq!(xs.len(), 3),
            x => panic!("expected flat Or, got {x}"),
        }
    }

    #[test]
    fn double_negation_collapses() {
        let f = Formula::not(Formula::not(atom(1)));
        assert_eq!(f, atom(1));
    }

    #[test]
    fn subst_grounds_quantified_atom() {
        let q = QVarId(7);
        let body = Formula::atom(
            Term::qfield(ArrayId(0), q, 0),
            RelOp::Eq,
            Term::Const(5),
        );
        let f = Formula::exists(q, ArrayId(0), body);
        assert!(f.has_quantifier());
        if let Formula::Exists { body, .. } = &f {
            let g = body.subst(q, 1);
            assert!(!g.has_quantifier());
            match g {
                Formula::Atom(a) => assert!(a.is_ground()),
                x => panic!("unexpected {x}"),
            }
        }
    }

    #[test]
    fn atom_count_counts_leaves() {
        let f = Formula::and([atom(1), Formula::or([atom(2), atom(3)])]);
        assert_eq!(f.atom_count(), 3);
    }
}
