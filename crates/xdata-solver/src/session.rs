//! Incremental assumption-based solving sessions.
//!
//! X-Data's per-query pipeline fans out into dozens of solve targets that
//! are near-identical: every one shares the database constraint *skeleton*
//! (primary keys, foreign keys, domains — by far the largest part of the
//! formula) and differs only in a handful of per-target *delta*
//! constraints. A one-shot [`Problem::solve`](crate::Problem::solve) pays
//! the full NNF + unfold + canonicalize + intern cost of the skeleton for
//! every target and throws the search's learned knowledge away each time.
//!
//! A [`SolveSession`] instead keeps one CDCL engine alive for the whole
//! family:
//!
//! * The skeleton is lowered **once**, when the session is built.
//! * Each call to [`SolveSession::solve_delta`] lowers only the target's
//!   delta constraints, guards them behind a fresh selector atom
//!   (`¬selectorᵢ ∨ deltaᵢ`), and solves under **assumptions**: one
//!   decision level per registered selector, asserting exactly the current
//!   target's selector true and every other false.
//! * Because the guards are ordinary, universally valid parts of one
//!   monolithic formula, every clause learned while solving one target
//!   holds for all the others — so learned clauses, VSIDS activities, and
//!   saved phases compound across targets instead of being rebuilt.
//! * Retention is bounded by LBD-based clause-DB aging between targets
//!   (see the `cdcl` module's docs).
//!
//! An assumption found false at establishment time yields a
//! failed-assumption core — the target alone is unsatisfiable and the
//! session stays healthy. Only a conflict at decision level 0 (the formula
//! itself refuted, independent of any selector) poisons the session, after
//! which every further target reports `Unsat` immediately.
//!
//! The session is `Sync`: callers may share it behind an `Arc`, with an
//! internal mutex serializing solves. Determinism across schedules is the
//! *caller's* responsibility — results depend on the order in which
//! targets hit the session, so `xdata-core` serializes same-skeleton
//! targets into plan order before calling in.

use std::sync::Mutex;

use xdata_par::CancelToken;

use crate::cdcl::{lit, Cdcl, IF};
use crate::formula::Formula;
use crate::ids::VarTable;
use crate::nnf::to_nnf;
use crate::problem::{outcome_from_ground, Problem, SolveOutcome, SolverStats};
use crate::search::{record_search_obs, GroundResult};
use crate::unfold::unfold;

struct Inner {
    core: Cdcl,
    vars: VarTable,
    /// The monolithic formula: an `And` whose first child is the lowered
    /// skeleton, followed by one selector guard per registered target.
    root: IF,
    /// Selector atom index per registered target, in registration order.
    /// Solve `i` assumes `selectors[i]` true and every other one false.
    selectors: Vec<u32>,
    /// Constraint count of the shared skeleton problem; a target problem's
    /// delta is everything asserted past this prefix.
    skeleton_len: usize,
    /// Set when a solve refuted the formula independently of any
    /// assumption: the skeleton itself is unsatisfiable, so every future
    /// target is too.
    poisoned: bool,
}

/// A long-lived solving session over one shared constraint skeleton. See
/// the module docs for the encoding; see `xdata-core`'s generator for the
/// production caller (one session per `(copies, repair_cap)` skeleton
/// shape).
pub struct SolveSession {
    inner: Mutex<Inner>,
}

impl SolveSession {
    /// Build a session from the shared skeleton problem, lowering its
    /// constraints into the engine once. In unfold mode the caller
    /// typically passes a pre-inlined skeleton
    /// ([`Problem::inline_quantifiers`]); any remaining bounded quantifiers
    /// are unfolded here.
    pub fn new(skeleton: &Problem) -> SolveSession {
        let vars = skeleton.var_table();
        let mut core = Cdcl::new(vars.clone(), 0, CancelToken::new());
        let nf = Formula::and(skeleton.constraints().iter().map(to_nnf));
        let ground = unfold(&nf, &vars);
        let skel_if = core.lower_formula(&ground);
        SolveSession {
            inner: Mutex::new(Inner {
                core,
                vars,
                root: IF::And(vec![skel_if]),
                selectors: Vec::new(),
                skeleton_len: skeleton.constraints().len(),
                poisoned: false,
            }),
        }
    }

    /// Constraint count of the skeleton this session was built from.
    pub fn skeleton_len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).skeleton_len
    }

    /// Number of targets registered so far (equals the number of
    /// non-pre-cancelled [`SolveSession::solve_delta`] calls).
    pub fn targets_registered(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).selectors.len()
    }

    /// Solve one target: `problem` must extend this session's skeleton
    /// (same arrays, skeleton constraints as a prefix). The delta — every
    /// constraint past the skeleton prefix — is lowered, guarded behind a
    /// fresh selector, and solved under assumptions, retaining everything
    /// the engine learned for the targets that follow.
    ///
    /// Cancellation: an already-tripped token returns
    /// [`SolveOutcome::Cancelled`] *before any session mutation* (so
    /// synthetic chaos expiry cannot perturb later targets), and the search
    /// itself checks the token on the engine's usual every-64-steps
    /// cadence.
    pub fn solve_delta(
        &self,
        problem: &Problem,
        limit: u64,
        cancel: &CancelToken,
    ) -> (SolveOutcome, SolverStats) {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let inner = &mut *guard;
        if cancel.is_cancelled() {
            return (SolveOutcome::Cancelled, SolverStats::default());
        }
        debug_assert!(
            problem.specs().len() == inner.vars.arrays().count()
                && problem
                    .specs()
                    .iter()
                    .enumerate()
                    .all(|(i, s)| inner.vars.spec(crate::ids::ArrayId(i as u32)) == s),
            "target problem declares different arrays than the session skeleton"
        );
        debug_assert!(
            problem.constraints().len() >= inner.skeleton_len,
            "target problem is shorter than the session skeleton"
        );
        if inner.poisoned {
            // The skeleton itself was refuted: every target is Unsat. Keep
            // the per-solve counters flowing so reports stay summable.
            let stats = SolverStats { ground_solves: 1, ..SolverStats::default() };
            xdata_obs::counter("solver.ground_solves", 1);
            xdata_obs::counter("solver.session.assumption_solves", 1);
            return (SolveOutcome::Unsat, stats);
        }

        // Register this target: lower its delta and guard it behind a
        // fresh selector. `¬sel` comes first in the guard so the walk
        // dismisses inactive targets in O(1).
        let tid = inner.selectors.len() as u32;
        let sel = inner.core.intern_selector(tid);
        let delta: Vec<IF> = problem.constraints()[inner.skeleton_len..]
            .iter()
            .map(|c| {
                let g = unfold(&to_nnf(c), &inner.vars);
                inner.core.lower_formula(&g)
            })
            .collect();
        let target_guard =
            IF::Or(vec![IF::Not(Box::new(IF::Atom(sel))), IF::And(delta)]);
        match &mut inner.root {
            IF::And(children) => children.push(target_guard),
            _ => unreachable!("session root is always an And"),
        }
        inner.selectors.push(sel);

        let assumptions: Vec<_> = inner
            .selectors
            .iter()
            .enumerate()
            .map(|(i, &s)| lit(s, i as u32 == tid))
            .collect();
        inner.core.begin_solve(limit, cancel.clone(), assumptions);
        // Age the clause DB between targets (level 0, before the search).
        inner.core.reduce_db();
        let reused = inner.core.live_learned_clauses() as u64;
        let result = inner.core.solve_current(&inner.root);
        if inner.core.global_unsat() {
            inner.poisoned = true;
        }
        debug_assert!(
            !matches!(result, GroundResult::Unsat)
                || inner.poisoned
                || !inner.core.failed_core().is_empty(),
            "assumption-rejected solve must carry a failed-assumption core"
        );

        let s = *inner.core.stats();
        let stats = SolverStats {
            decisions: s.decisions,
            conflicts: s.conflicts,
            theory_relaxations: s.theory_relaxations,
            propagations: s.propagations,
            unknown_exits: s.unknown_exits,
            learned_clauses: s.learned_clauses,
            restarts: s.restarts,
            cancel_checks: s.cancel_checks,
            ground_solves: 1,
            instantiations: 0,
            // Sessions report the engine's cumulative interned-atom count
            // (the formula grows by one guard per target); one-shot solves
            // report the per-target ground formula's atom count.
            ground_atoms: inner.core.atom_count(),
        };
        record_search_obs(&result, &s, inner.core.backjumps(), inner.core.lbds(), cancel);
        xdata_obs::counter("solver.ground_solves", 1);
        xdata_obs::observe("solver.ground_atoms", stats.ground_atoms as u64);
        xdata_obs::counter("solver.session.assumption_solves", 1);
        xdata_obs::counter("solver.session.reused_clauses", reused);
        (outcome_from_ground(result, &inner.vars), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RelOp, Term};
    use crate::eval::eval;
    use crate::formula::Formula;

    /// A small skeleton: one array of 2×2, all fields in [0, 100].
    fn skeleton() -> Problem {
        let mut p = Problem::new();
        let r = p.add_array("r", 2, 2);
        for i in 0..2 {
            for f in 0..2 {
                p.assert(Formula::atom(Term::field(r, i, f), RelOp::Ge, Term::Const(0)));
                p.assert(Formula::atom(Term::field(r, i, f), RelOp::Le, Term::Const(100)));
            }
        }
        p
    }

    fn fld(i: u32, f: u32) -> Term {
        Term::field(crate::ids::ArrayId(0), i, f)
    }

    #[test]
    fn session_solves_many_targets_and_retains_learning() {
        let skel = skeleton();
        let session = SolveSession::new(&skel);
        let token = CancelToken::new();
        for k in 0..6 {
            let mut p = skel.clone();
            // Target k: r[0].0 = 10+k and r[1].0 ≠ r[0].0.
            p.assert(Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(10 + k)));
            p.assert(Formula::atom(fld(1, 0), RelOp::Ne, fld(0, 0)));
            let (out, stats) = session.solve_delta(&p, 1_000_000, &token);
            let m = match out {
                SolveOutcome::Sat(m) => m,
                o => panic!("target {k}: expected sat, got {o:?}"),
            };
            let vars = p.var_table();
            for c in p.constraints() {
                assert!(eval(c, m.values(), &vars), "target {k}: model violates {c}");
            }
            assert_eq!(stats.ground_solves, 1);
        }
        assert_eq!(session.targets_registered(), 6);
    }

    #[test]
    fn unsat_target_does_not_poison_session() {
        let skel = skeleton();
        let session = SolveSession::new(&skel);
        let token = CancelToken::new();
        // Target 0: contradictory — field both above and below bounds.
        let mut bad = skel.clone();
        bad.assert(Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(200)));
        let (out, _) = session.solve_delta(&bad, 1_000_000, &token);
        assert!(matches!(out, SolveOutcome::Unsat), "got {out:?}");
        // Target 1: satisfiable — the session must recover.
        let mut ok = skel.clone();
        ok.assert(Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(7)));
        let (out, _) = session.solve_delta(&ok, 1_000_000, &token);
        assert!(out.is_sat(), "session poisoned by a target-local Unsat");
        // And an Unsat again, interleaved.
        let mut bad2 = skel.clone();
        bad2.assert(Formula::atom(fld(1, 1), RelOp::Lt, Term::Const(0)));
        let (out, _) = session.solve_delta(&bad2, 1_000_000, &token);
        assert!(matches!(out, SolveOutcome::Unsat), "got {out:?}");
    }

    #[test]
    fn unsat_skeleton_poisons_every_target() {
        let mut skel = skeleton();
        skel.assert(Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(500)));
        let session = SolveSession::new(&skel);
        let token = CancelToken::new();
        for _ in 0..2 {
            let mut p = skel.clone();
            p.assert(Formula::atom(fld(1, 0), RelOp::Ge, Term::Const(1)));
            let (out, _) = session.solve_delta(&p, 1_000_000, &token);
            assert!(matches!(out, SolveOutcome::Unsat), "got {out:?}");
        }
    }

    #[test]
    fn pre_cancelled_solve_leaves_session_untouched() {
        let skel = skeleton();
        let session = SolveSession::new(&skel);
        let expired = CancelToken::new();
        expired.cancel();
        let mut p = skel.clone();
        p.assert(Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(3)));
        let (out, stats) = session.solve_delta(&p, 1_000_000, &expired);
        assert!(matches!(out, SolveOutcome::Cancelled), "got {out:?}");
        assert_eq!(stats.decisions, 0);
        // No selector was registered: the expired target left no trace.
        assert_eq!(session.targets_registered(), 0);
        // A live solve afterwards behaves as if the cancelled one never
        // happened.
        let live = CancelToken::new();
        let (out, _) = session.solve_delta(&p, 1_000_000, &live);
        assert!(out.is_sat());
        assert_eq!(session.targets_registered(), 1);
    }

    #[test]
    fn tiny_budget_reports_unknown_like_fresh_cdcl() {
        let mut skel = skeleton();
        // A genuine choice point in the skeleton keeps propagation from
        // solving it alone.
        skel.assert(Formula::or([
            Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(1)),
            Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(7)),
        ]));
        let session = SolveSession::new(&skel);
        let token = CancelToken::new();
        let mut p = skel.clone();
        p.assert(Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(3)));
        let (out, stats) = session.solve_delta(&p, 0, &token);
        let (fresh_out, fresh_stats) =
            p.solve_with(crate::Mode::Unfold, 0, crate::SearchCore::Cdcl);
        assert_eq!(
            matches!(out, SolveOutcome::Unknown),
            matches!(fresh_out, SolveOutcome::Unknown),
            "session {out:?} vs fresh {fresh_out:?}"
        );
        assert_eq!(stats.decisions, fresh_stats.decisions, "assumptions must not count");
    }

    #[test]
    fn matches_fresh_verdicts_across_a_target_family() {
        let skel = skeleton();
        let session = SolveSession::new(&skel);
        let token = CancelToken::new();
        for k in 0..8 {
            let mut p = skel.clone();
            p.assert(Formula::atom(fld(0, 0), RelOp::Ge, Term::Const(k * 30)));
            p.assert(Formula::atom(fld(0, 1), RelOp::Ne, fld(0, 0)));
            let (out, _) = session.solve_delta(&p, 1_000_000, &token);
            let (fresh, _) = p.solve(crate::Mode::Unfold);
            assert_eq!(
                out.is_sat(),
                fresh.is_sat(),
                "k={k}: session {out:?} vs fresh {fresh:?}"
            );
            // k * 30 > 100 ⇒ unsat against the domain skeleton.
            assert_eq!(out.is_sat(), k * 30 <= 100, "k={k}");
        }
    }
}
