//! Ground search over quantifier-free formulas with the difference-logic
//! theory, in two interchangeable cores.
//!
//! * [`SearchCore::Cdcl`] (the default, implemented in the `cdcl` module) —
//!   conflict-driven clause learning "lite": theory conflicts are explained
//!   by the difference-logic negative cycle, conflicts are analyzed to a
//!   1-UIP learned clause, the search backjumps non-chronologically,
//!   decisions follow an activity-bumped (VSIDS-style, deterministically
//!   tie-broken) heuristic, and Luby-sequence restarts keep learned clauses.
//! * [`SearchCore::Dpll`] — the original chronological-backtracking DPLL
//!   kept as a reference implementation: it walks the formula under the
//!   current partial assignment, prefers *unit* picks, branches on the
//!   chosen atom and asserts the matching difference bounds into the
//!   theory, and on conflict rewinds one decision. `xdata-bench`'s
//!   `solver_sweep` measures one core against the other, and differential
//!   tests cross-check their verdicts.
//!
//! Both cores share the canonical atom form defined here: strict operators
//! are absorbed into constants (`x < k ⇔ x ≤ k−1`) and two-variable atoms
//! order their variables, so syntactically different but semantically
//! identical atoms share one assignment slot. `=` decided false is not a
//! single bound; DPLL branches twice (`<` then `>`) while CDCL introduces
//! the split atoms with an axiom clause `(x = k) ∨ (x ≤ k−1) ∨ (x ≥ k+1)`.
//!
//! Each core is complete over the exhaustive branch set and the theory is
//! decidable, hence `Unsat` is a proof that no model exists — the property
//! X-Data's completeness guarantee (§V-G) relies on to equate "no dataset"
//! with "equivalent mutant".

use std::collections::HashMap;

use xdata_par::CancelToken;

use crate::atom::{Diff, RelOp};
use crate::formula::Formula;
use crate::ids::VarTable;
use crate::theory::{bounds_for, Bound, DiffLogic};

/// Canonical form of a decision atom. Strict operators are absorbed into
/// constants (`x < k ⇔ x ≤ k−1`), two-variable atoms order their variables,
/// so syntactically different but semantically identical atoms share one
/// assignment slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    /// `x ⋈ k` with `⋈ ∈ {Eq, Le, Ge}`.
    One { x: u32, op: CanonOp, k: i64 },
    /// `x − y ⋈ k` with `x < y` and `⋈ ∈ {Eq, Le, Ge}`.
    Two { x: u32, y: u32, op: CanonOp, k: i64 },
    /// A per-target activation guard used by incremental sessions: a pure
    /// boolean atom with no theory meaning (its bound set is empty either
    /// way). Target `id`'s delta constraints are guarded by
    /// `¬selectorᵢ ∨ delta`, and each session solve assumes exactly one
    /// selector true — which is what makes every clause learned inside one
    /// target's solve globally valid for all the others.
    Selector { id: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CanonOp {
    Eq,
    Le,
    Ge,
}

fn canon_op(op: RelOp, k: i64) -> (CanonOp, i64) {
    match op {
        RelOp::Eq => (CanonOp::Eq, k),
        RelOp::Le => (CanonOp::Le, k),
        RelOp::Lt => (CanonOp::Le, k - 1),
        RelOp::Ge => (CanonOp::Ge, k),
        RelOp::Gt => (CanonOp::Ge, k + 1),
        RelOp::Ne => unreachable!("Ne eliminated during NNF"),
    }
}

pub(crate) fn canon(diff: Diff) -> Result<Key, bool> {
    match diff {
        Diff::Ground(b) => Err(b),
        Diff::OneVar { x, op, k } => {
            let (op, k) = canon_op(op, k);
            Ok(Key::One { x: x.0, op, k })
        }
        Diff::TwoVar { x, y, op, k } => {
            let (x, y, op, k) =
                if x.0 < y.0 { (x.0, y.0, op, k) } else { (y.0, x.0, op.flip(), -k) };
            let (op, k) = canon_op(op, k);
            Ok(Key::Two { x, y, op, k })
        }
    }
}

impl Key {
    fn diff(self, op: RelOp, k: i64) -> Diff {
        match self {
            Key::One { x, .. } => Diff::OneVar { x: crate::ids::VarId(x), op, k },
            Key::Two { x, y, .. } => {
                Diff::TwoVar { x: crate::ids::VarId(x), y: crate::ids::VarId(y), op, k }
            }
            Key::Selector { .. } => unreachable!("selector atoms carry no difference"),
        }
    }

    pub(crate) fn op(self) -> CanonOp {
        match self {
            Key::One { op, .. } | Key::Two { op, .. } => op,
            // Any non-`Eq` op: selectors must never join the lazy Eq-split
            // machinery, and they never reach the theory.
            Key::Selector { .. } => CanonOp::Le,
        }
    }

    pub(crate) fn k(self) -> i64 {
        match self {
            Key::One { k, .. } | Key::Two { k, .. } => k,
            Key::Selector { .. } => 0,
        }
    }

    /// The key with the same variables but a different canonical operator
    /// and constant — used by CDCL to intern the `<`/`>` split atoms of a
    /// disequality.
    pub(crate) fn with_op(self, op: CanonOp, k: i64) -> Key {
        match self {
            Key::One { x, .. } => Key::One { x, op, k },
            Key::Two { x, y, .. } => Key::Two { x, y, op, k },
            Key::Selector { .. } => unreachable!("selector atoms have no split form"),
        }
    }

    /// The difference bounds asserted when this atom is assigned `value`,
    /// or `None` for `Eq` assigned false (a disjunction, not a bound).
    pub(crate) fn bounds_when(self, value: bool, zero: u32) -> Option<Vec<Bound>> {
        // A selector is a free boolean: either polarity asserts nothing
        // (same shape as a `Diff::Ground` atom's empty bound set).
        if matches!(self, Key::Selector { .. }) {
            return Some(Vec::new());
        }
        let (op, k) = (self.op(), self.k());
        match (op, value) {
            (CanonOp::Le, true) => bounds_for(self.diff(RelOp::Le, k), true, zero),
            (CanonOp::Le, false) => bounds_for(self.diff(RelOp::Ge, k + 1), true, zero),
            (CanonOp::Ge, true) => bounds_for(self.diff(RelOp::Ge, k), true, zero),
            (CanonOp::Ge, false) => bounds_for(self.diff(RelOp::Le, k - 1), true, zero),
            (CanonOp::Eq, true) => bounds_for(self.diff(RelOp::Eq, k), true, zero),
            (CanonOp::Eq, false) => None,
        }
    }

    /// The branches to try when deciding this atom: `(assigned value,
    /// difference bounds to assert)`. Exhaustive over the atom's semantics.
    fn branches(self, zero: u32) -> Vec<(bool, Vec<Bound>)> {
        if matches!(self, Key::Selector { .. }) {
            // DPLL never lowers session formulas, but stay exhaustive: a
            // free boolean branches on both polarities with no bounds.
            return vec![(true, Vec::new()), (false, Vec::new())];
        }
        let (op, k) = (self.op(), self.k());
        match op {
            CanonOp::Le => vec![
                (true, bounds_for(self.diff(RelOp::Le, k), true, zero).expect("Le is a bound")),
                (false, bounds_for(self.diff(RelOp::Ge, k + 1), true, zero).expect("Ge is a bound")),
            ],
            CanonOp::Ge => vec![
                (true, bounds_for(self.diff(RelOp::Ge, k), true, zero).expect("Ge is a bound")),
                (false, bounds_for(self.diff(RelOp::Le, k - 1), true, zero).expect("Le is a bound")),
            ],
            CanonOp::Eq => vec![
                (true, bounds_for(self.diff(RelOp::Eq, k), true, zero).expect("Eq is bounds")),
                (false, bounds_for(self.diff(RelOp::Le, k - 1), true, zero).expect("Le is a bound")),
                (false, bounds_for(self.diff(RelOp::Ge, k + 1), true, zero).expect("Ge is a bound")),
            ],
        }
    }
}

/// Which ground search engine to run. [`SearchCore::Cdcl`] is the default;
/// [`SearchCore::Dpll`] is the chronological reference kept for
/// benchmarking (`solver_sweep`) and differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchCore {
    /// Conflict-driven clause learning with theory explanations, 1-UIP
    /// learning, non-chronological backjumping, activity-guided decisions
    /// and Luby restarts.
    #[default]
    Cdcl,
    /// Chronological-backtracking DPLL (the pre-CDCL engine).
    Dpll,
}

/// Search statistics for one `solve_ground` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    pub decisions: u64,
    pub conflicts: u64,
    pub theory_relaxations: u64,
    /// Unit propagations: assignments that were *forced* — by a clause
    /// becoming unit (CDCL), or by the formula walk finding an atom under
    /// conjunctions and single-live-child disjunctions only (both cores).
    pub propagations: u64,
    /// 1 when this call exhausted its decision budget and returned
    /// [`GroundResult::Unknown`], 0 otherwise — summable across calls.
    pub unknown_exits: u64,
    /// Clauses learned from conflict analysis (CDCL only).
    pub learned_clauses: u64,
    /// Luby-scheduled restarts taken (CDCL only); learned clauses and
    /// activities survive each restart.
    pub restarts: u64,
    /// Cooperative cancellation checks performed in the hot loop (one
    /// every [`CANCEL_CHECK_INTERVAL`] search steps). Deterministic for a
    /// deterministic solve: the step count is a function of the formula,
    /// not the schedule.
    pub cancel_checks: u64,
    /// Decisions that re-descended with a previously saved (non-fresh)
    /// polarity. Only incremental sessions enable phase saving, so this is
    /// always 0 for fresh solves.
    pub phase_saves: u64,
    /// Learned clauses surviving the most recent clause-DB reduction
    /// (incremental sessions only; 0 when no reduction ran).
    pub clause_db_kept: u64,
    /// Learned clauses tombstoned by the most recent clause-DB reduction
    /// (incremental sessions only; 0 when no reduction ran).
    pub clause_db_dropped: u64,
}

/// Result of the ground search.
pub enum GroundResult {
    Sat(Vec<i64>),
    Unsat,
    /// Decision limit exceeded — never observed on X-Data workloads, but
    /// surfaced rather than looping forever on adversarial inputs.
    Unknown,
    /// The [`CancelToken`] tripped (deadline expired or explicit cancel)
    /// before a verdict. Unlike [`GroundResult::Unknown`] this says the
    /// *caller* ran out of wall-clock budget, not that the search ran out
    /// of decisions.
    Cancelled,
}

/// Search steps between cooperative [`CancelToken`] checks. Small enough
/// that a 1 ms per-target deadline is honoured promptly (one step is a
/// handful of propagations), large enough that the `Instant` read
/// disappears in the noise. The check also runs at step 0, so a token that
/// is already tripped (synthetic chaos expiry) exits before any work.
pub const CANCEL_CHECK_INTERVAL: u64 = 64;

struct Searcher<'a> {
    vars: &'a VarTable,
    th: DiffLogic,
    assign: HashMap<Key, bool>,
    stats: SearchStats,
    decision_limit: u64,
    cancel: &'a CancelToken,
    /// Search steps since start, for the cancellation check cadence.
    steps: u64,
}

enum Ev {
    True,
    False,
    /// Undecided; `score` is the branching breadth of the tightest
    /// disjunction the pick was found in: 1 means the atom is *forced true*
    /// under the current assignment (unit), larger means a genuine choice
    /// point. The search prefers small scores (fail-first).
    Undef { pick: Key, score: u32 },
}

impl<'a> Searcher<'a> {
    fn eval_pick(&self, f: &Formula) -> Ev {
        match f {
            Formula::True => Ev::True,
            Formula::False => Ev::False,
            Formula::Atom(a) => match canon(a.to_diff(self.vars)) {
                Err(b) => {
                    if b {
                        Ev::True
                    } else {
                        Ev::False
                    }
                }
                Ok(key) => match self.assign.get(&key) {
                    Some(true) => Ev::True,
                    Some(false) => Ev::False,
                    None => Ev::Undef { pick: key, score: 1 },
                },
            },
            Formula::And(xs) => {
                let mut best: Option<(Key, u32)> = None;
                for x in xs {
                    match self.eval_pick(x) {
                        Ev::False => return Ev::False,
                        Ev::True => {}
                        Ev::Undef { pick, score } => {
                            if best.map(|(_, s)| score < s).unwrap_or(true) {
                                best = Some((pick, score));
                                if score == 1 {
                                    // Cannot do better than a unit pick.
                                    return Ev::Undef { pick, score };
                                }
                            }
                        }
                    }
                }
                match best {
                    None => Ev::True,
                    Some((pick, score)) => Ev::Undef { pick, score },
                }
            }
            Formula::Or(xs) => {
                let mut undef: Vec<(Key, u32)> = Vec::new();
                for x in xs {
                    match self.eval_pick(x) {
                        Ev::True => return Ev::True,
                        Ev::False => {}
                        Ev::Undef { pick, score } => undef.push((pick, score)),
                    }
                }
                match undef.len() {
                    0 => Ev::False,
                    // Exactly one live child: the Or forces that branch, so
                    // the child's own score stands (possibly unit).
                    1 => Ev::Undef { pick: undef[0].0, score: undef[0].1 },
                    // A real choice point: breadth = number of live
                    // children (at least), picking the child with the
                    // smallest inner score.
                    k => {
                        let (pick, inner) =
                            *undef.iter().min_by_key(|(_, s)| *s).expect("non-empty");
                        Ev::Undef { pick, score: inner.max(k as u32) }
                    }
                }
            }
            Formula::Not(x) => match self.eval_pick(x) {
                Ev::True => Ev::False,
                Ev::False => Ev::True,
                // Under negation "forced true" flips meaning; NNF input
                // never has Not, but stay sound for raw callers.
                Ev::Undef { pick, score } => Ev::Undef { pick, score: score.max(2) },
            },
            Formula::Forall { .. } | Formula::Exists { .. } => {
                panic!("quantifier reached ground search; unfold or instantiate first")
            }
        }
    }

    fn dpll(&mut self, root: &Formula) -> Option<GroundResult> {
        if self.steps.is_multiple_of(CANCEL_CHECK_INTERVAL) {
            self.stats.cancel_checks += 1;
            if self.cancel.is_cancelled() {
                return Some(GroundResult::Cancelled);
            }
        }
        self.steps += 1;
        match self.eval_pick(root) {
            Ev::True => Some(GroundResult::Sat(self.th.model())),
            Ev::False => None,
            Ev::Undef { pick, score } => {
                if self.stats.decisions >= self.decision_limit {
                    return Some(GroundResult::Unknown);
                }
                let mut branches = pick.branches(self.th.zero());
                if score == 1 {
                    self.stats.propagations += 1;
                    // The atom sits under conjunctions and forced (single
                    // live child) disjunctions only: it must be true here,
                    // so never explore its false branches. This is unit
                    // propagation, crucial on the root-level domain/equality
                    // conjuncts and on nearly-exhausted FK disjunctions.
                    branches.retain(|(v, _)| *v);
                }
                for (val, bounds) in branches {
                    self.stats.decisions += 1;
                    self.th.push_level();
                    if self.th.assert_all(&bounds) {
                        self.assign.insert(pick, val);
                        match self.dpll(root) {
                            Some(r) => return Some(r),
                            None => {
                                self.assign.remove(&pick);
                            }
                        }
                    }
                    self.stats.conflicts += 1;
                    self.th.pop_level();
                }
                None
            }
        }
    }
}

/// Default decision budget: far above anything X-Data workloads need, a
/// backstop against adversarial inputs.
pub const DEFAULT_DECISION_LIMIT: u64 = 50_000_000;

/// Decide a ground NNF formula (no quantifiers, no `Ne` atoms) with the
/// default CDCL core. Returns the model as a flat `VarId`-indexed vector
/// when satisfiable.
pub fn solve_ground(f: &Formula, vars: &VarTable) -> (GroundResult, SearchStats) {
    solve_ground_with_limit(f, vars, DEFAULT_DECISION_LIMIT)
}

/// [`solve_ground`] with an explicit decision budget; exceeding it returns
/// [`GroundResult::Unknown`].
pub fn solve_ground_with_limit(
    f: &Formula,
    vars: &VarTable,
    decision_limit: u64,
) -> (GroundResult, SearchStats) {
    solve_ground_with(f, vars, decision_limit, SearchCore::default())
}

/// [`solve_ground_with_limit`] with an explicit [`SearchCore`] selection.
pub fn solve_ground_with(
    f: &Formula,
    vars: &VarTable,
    decision_limit: u64,
    core: SearchCore,
) -> (GroundResult, SearchStats) {
    solve_ground_cancel(f, vars, decision_limit, core, &CancelToken::new())
}

/// [`solve_ground_with`] under a [`CancelToken`]: the hot loop of either
/// core checks the token every [`CANCEL_CHECK_INTERVAL`] steps and exits
/// with [`GroundResult::Cancelled`] once it trips. When the token carries a
/// real wall-clock deadline, the overshoot (gap between expiry and the
/// check noticing) lands in the `solver.cancel_latency` histogram;
/// synthetic cancellation records nothing, keeping chaos-test metrics
/// deterministic.
pub fn solve_ground_cancel(
    f: &Formula,
    vars: &VarTable,
    decision_limit: u64,
    core: SearchCore,
    cancel: &CancelToken,
) -> (GroundResult, SearchStats) {
    let (result, stats, backjumps, lbds) = match core {
        SearchCore::Cdcl => crate::cdcl::solve(f, vars, decision_limit, cancel),
        SearchCore::Dpll => {
            let (r, s) = solve_dpll(f, vars, decision_limit, cancel);
            (r, s, Vec::new(), Vec::new())
        }
    };
    record_search_obs(&result, &stats, &backjumps, &lbds, cancel);
    (result, stats)
}

/// Wire one ground solve's stats into the global recorder (a no-op unless a
/// metrics sink is installed). Recorded once per ground solve, not per
/// decision, so the instrumented hot path stays hot. Shared between the
/// fresh-solve entry points here and the incremental session, which
/// bypasses [`solve_ground_cancel`].
pub(crate) fn record_search_obs(
    result: &GroundResult,
    stats: &SearchStats,
    backjumps: &[u64],
    lbds: &[u64],
    cancel: &CancelToken,
) {
    xdata_obs::counter("solver.decisions", stats.decisions);
    xdata_obs::counter("solver.conflicts", stats.conflicts);
    xdata_obs::counter("solver.propagations", stats.propagations);
    xdata_obs::counter("solver.theory_relaxations", stats.theory_relaxations);
    xdata_obs::counter("solver.unknown_exits", stats.unknown_exits);
    xdata_obs::counter("solver.learned_clauses", stats.learned_clauses);
    xdata_obs::counter("solver.restarts", stats.restarts);
    xdata_obs::counter("solver.cancel_checks", stats.cancel_checks);
    xdata_obs::counter("solver.phase_saves", stats.phase_saves);
    xdata_obs::counter("solver.clause_db.kept", stats.clause_db_kept);
    xdata_obs::counter("solver.clause_db.dropped", stats.clause_db_dropped);
    xdata_obs::observe_all("solver.backjump_depth", backjumps);
    xdata_obs::observe_all("solver.clause_lbd", lbds);
    if matches!(result, GroundResult::Cancelled) {
        if let Some(over) = cancel.overshoot() {
            // Only a real wall-clock expiry has a latency; synthetic
            // (chaos) cancellation must not perturb the metrics report.
            xdata_obs::observe("solver.cancel_latency", over.as_nanos() as u64);
        }
    }
    // One timeline event per ground solve summarizing the search — the
    // per-decision/per-conflict firehose would bloat traces by orders of
    // magnitude, so the batch totals are the compromise (restarts do get
    // their own instants: rare and diagnostically loud).
    xdata_obs::instant("solver.solve", || {
        let verdict = match result {
            GroundResult::Sat(_) => "sat",
            GroundResult::Unsat => "unsat",
            GroundResult::Unknown => "unknown",
            GroundResult::Cancelled => "cancelled",
        };
        format!(
            "{verdict} ({} decisions, {} conflicts, {} restarts)",
            stats.decisions, stats.conflicts, stats.restarts
        )
    });
}

fn solve_dpll(
    f: &Formula,
    vars: &VarTable,
    decision_limit: u64,
    cancel: &CancelToken,
) -> (GroundResult, SearchStats) {
    let mut s = Searcher {
        vars,
        th: DiffLogic::new(vars.num_vars()),
        assign: HashMap::new(),
        stats: SearchStats::default(),
        decision_limit,
        cancel,
        steps: 0,
    };
    let result = match s.dpll(f) {
        Some(r) => r,
        None => GroundResult::Unsat,
    };
    s.stats.theory_relaxations = s.th.relaxations;
    if matches!(result, GroundResult::Unknown) {
        s.stats.unknown_exits = 1;
    }
    (result, s.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Term;
    use crate::eval::eval;
    use crate::ids::{ArrayId, ArraySpec};
    use crate::nnf::to_nnf;

    const CORES: [SearchCore; 2] = [SearchCore::Cdcl, SearchCore::Dpll];

    fn vars(len: u32) -> VarTable {
        VarTable::new(&[ArraySpec { name: "r".into(), len, fields: 2 }])
    }

    fn fld(i: u32, f: u32) -> Term {
        Term::field(ArrayId(0), i, f)
    }

    /// Check SAT on both cores; return the CDCL model.
    fn check_sat(f: &Formula, vt: &VarTable) -> Vec<i64> {
        let nf = to_nnf(f);
        let mut model = None;
        for core in CORES {
            match solve_ground_with(&nf, vt, DEFAULT_DECISION_LIMIT, core).0 {
                GroundResult::Sat(m) => {
                    assert!(
                        eval(f, &m, vt),
                        "{core:?} model does not satisfy formula: {f} / {m:?}"
                    );
                    if core == SearchCore::Cdcl {
                        model = Some(m);
                    }
                }
                GroundResult::Unsat => panic!("{core:?}: expected sat: {f}"),
                GroundResult::Unknown => panic!("{core:?}: unknown: {f}"),
                GroundResult::Cancelled => panic!("{core:?}: cancelled: {f}"),
            }
        }
        model.expect("CDCL ran")
    }

    fn check_unsat(f: &Formula, vt: &VarTable) {
        let nf = to_nnf(f);
        for core in CORES {
            assert!(
                matches!(
                    solve_ground_with(&nf, vt, DEFAULT_DECISION_LIMIT, core).0,
                    GroundResult::Unsat
                ),
                "{core:?}: expected unsat: {f}"
            );
        }
    }

    #[test]
    fn simple_conjunction() {
        let vt = vars(1);
        let f = Formula::and([
            Formula::atom(fld(0, 0), RelOp::Ge, Term::Const(3)),
            Formula::atom(fld(0, 0), RelOp::Le, Term::Const(5)),
            Formula::atom(fld(0, 1), RelOp::Eq, fld(0, 0).plus(1)),
        ]);
        let m = check_sat(&f, &vt);
        assert!(m[0] >= 3 && m[0] <= 5);
        assert_eq!(m[1], m[0] + 1);
    }

    #[test]
    fn contradiction_detected() {
        let vt = vars(1);
        let f = Formula::and([
            Formula::atom(fld(0, 0), RelOp::Lt, Term::Const(3)),
            Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(3)),
        ]);
        check_unsat(&f, &vt);
    }

    #[test]
    fn disjunction_explored() {
        let vt = vars(1);
        // (x = 1 ∨ x = 7) ∧ x > 3  ⇒  x = 7
        let f = Formula::and([
            Formula::or([
                Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(1)),
                Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(7)),
            ]),
            Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(3)),
        ]);
        let m = check_sat(&f, &vt);
        assert_eq!(m[0], 7);
    }

    #[test]
    fn disequality_via_ne() {
        let vt = vars(2);
        // r[0].0 = r[1].0 ∧ r[0].0 ≠ r[1].0 is unsat.
        let f = Formula::and([
            Formula::atom(fld(0, 0), RelOp::Eq, fld(1, 0)),
            Formula::atom(fld(0, 0), RelOp::Ne, fld(1, 0)),
        ]);
        check_unsat(&f, &vt);
        // alone, ≠ is satisfiable.
        let g = Formula::atom(fld(0, 0), RelOp::Ne, fld(1, 0));
        let m = check_sat(&g, &vt);
        assert_ne!(m[0], m[2]);
    }

    #[test]
    fn negated_conjunction() {
        let vt = vars(1);
        // ¬(x ≥ 0 ∧ x ≤ 10) ∧ x ≥ −5 ⇒ x ∈ [−5, −1] (or > 10).
        let f = Formula::and([
            Formula::not(Formula::and([
                Formula::atom(fld(0, 0), RelOp::Ge, Term::Const(0)),
                Formula::atom(fld(0, 0), RelOp::Le, Term::Const(10)),
            ])),
            Formula::atom(fld(0, 0), RelOp::Ge, Term::Const(-5)),
        ]);
        let m = check_sat(&f, &vt);
        assert!(m[0] < 0 || m[0] > 10);
    }

    #[test]
    fn integer_tightness() {
        let vt = vars(2);
        // x < y ∧ y < x + 2  ⇒  y = x + 1 over the integers.
        let f = Formula::and([
            Formula::atom(fld(0, 0), RelOp::Lt, fld(1, 0)),
            Formula::atom(fld(1, 0), RelOp::Lt, fld(0, 0).plus(2)),
        ]);
        let m = check_sat(&f, &vt);
        assert_eq!(m[2], m[0] + 1);
        // x < y ∧ y < x + 1 is unsat over the integers.
        let g = Formula::and([
            Formula::atom(fld(0, 0), RelOp::Lt, fld(1, 0)),
            Formula::atom(fld(1, 0), RelOp::Lt, fld(0, 0).plus(1)),
        ]);
        check_unsat(&g, &vt);
    }

    #[test]
    fn eq_false_branches_explore_both_sides() {
        let vt = vars(2);
        // ¬(x = y) ∧ x ≤ y  ⇒  x < y.
        let f = Formula::and([
            Formula::not(Formula::atom(fld(0, 0), RelOp::Eq, fld(1, 0))),
            Formula::atom(fld(0, 0), RelOp::Le, fld(1, 0)),
        ]);
        let m = check_sat(&f, &vt);
        assert!(m[0] < m[2]);
    }

    #[test]
    fn shared_atom_consistency() {
        let vt = vars(1);
        // The same semantic atom written two ways must share a decision:
        // (x < 4 ∨ x > 9) ∧ x ≤ 3 — "x < 4" and "x ≤ 3" are one key.
        let f = Formula::and([
            Formula::or([
                Formula::atom(fld(0, 0), RelOp::Lt, Term::Const(4)),
                Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(9)),
            ]),
            Formula::atom(fld(0, 0), RelOp::Le, Term::Const(3)),
        ]);
        let m = check_sat(&f, &vt);
        assert!(m[0] <= 3);
    }

    #[test]
    fn decision_limit_counts_unknown_exit() {
        let vt = vars(1);
        // Two genuine choice points guarantee the budget of 1 runs out.
        let f = Formula::and([
            Formula::or([
                Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(1)),
                Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(7)),
            ]),
            Formula::or([
                Formula::atom(fld(0, 1), RelOp::Eq, Term::Const(2)),
                Formula::atom(fld(0, 1), RelOp::Eq, Term::Const(9)),
            ]),
        ]);
        for core in CORES {
            let (res, stats) = solve_ground_with(&to_nnf(&f), &vt, 1, core);
            assert!(matches!(res, GroundResult::Unknown), "{core:?}: budget of 1 must exhaust");
            assert_eq!(stats.unknown_exits, 1, "{core:?}: {stats:?}");
            assert!(stats.decisions <= 1, "{core:?}: {stats:?}");
            // With a real budget the same formula solves, and the counter
            // stays at zero.
            let (res, stats) = solve_ground_with(&to_nnf(&f), &vt, 1_000, core);
            assert!(matches!(res, GroundResult::Sat(_)), "{core:?}");
            assert_eq!(stats.unknown_exits, 0, "{core:?}: {stats:?}");
        }
    }

    #[test]
    fn unit_picks_counted_as_propagations() {
        let vt = vars(1);
        // A pure conjunction: every assignment is forced (score 1).
        let f = Formula::and([
            Formula::atom(fld(0, 0), RelOp::Ge, Term::Const(3)),
            Formula::atom(fld(0, 1), RelOp::Eq, fld(0, 0).plus(1)),
        ]);
        for core in CORES {
            let (res, stats) = solve_ground_with(&to_nnf(&f), &vt, DEFAULT_DECISION_LIMIT, core);
            assert!(matches!(res, GroundResult::Sat(_)), "{core:?}");
            assert!(stats.propagations >= 2, "{core:?}: {stats:?}");
            match core {
                // Chronological DPLL counts a unit pick as both a
                // propagation and a decision.
                SearchCore::Dpll => {
                    assert!(stats.propagations <= stats.decisions, "{stats:?}")
                }
                // CDCL propagates units for free: a pure conjunction needs
                // no decisions at all.
                SearchCore::Cdcl => assert_eq!(stats.decisions, 0, "{stats:?}"),
            }
        }
    }

    #[test]
    fn pre_cancelled_token_exits_before_any_work() {
        let vt = vars(1);
        let f = Formula::and([
            Formula::or([
                Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(1)),
                Formula::atom(fld(0, 0), RelOp::Eq, Term::Const(7)),
            ]),
            Formula::atom(fld(0, 0), RelOp::Gt, Term::Const(3)),
        ]);
        for core in CORES {
            let token = CancelToken::new();
            token.cancel();
            let (res, stats) =
                solve_ground_cancel(&to_nnf(&f), &vt, DEFAULT_DECISION_LIMIT, core, &token);
            assert!(matches!(res, GroundResult::Cancelled), "{core:?}");
            assert_eq!(stats.decisions, 0, "{core:?}: cancelled before any decision");
            assert!(stats.cancel_checks >= 1, "{core:?}: the step-0 check must run");
        }
    }

    #[test]
    fn live_token_changes_nothing() {
        let vt = vars(1);
        let f = Formula::atom(fld(0, 0), RelOp::Ge, Term::Const(3));
        for core in CORES {
            let token = CancelToken::new();
            let (res, stats) =
                solve_ground_cancel(&to_nnf(&f), &vt, DEFAULT_DECISION_LIMIT, core, &token);
            assert!(matches!(res, GroundResult::Sat(_)), "{core:?}");
            assert!(stats.cancel_checks >= 1, "{core:?}: checks still counted");
        }
    }

    #[test]
    fn canonical_key_orders_variables() {
        // x - y ≤ 3 and y - x ≥ -3 are the same key.
        let vt = vars(2);
        let a = Formula::atom(fld(0, 0), RelOp::Le, fld(1, 0).plus(3));
        let b = Formula::atom(fld(1, 0).plus(3), RelOp::Ge, fld(0, 0));
        // They are mutually consistent and collapse into one decision.
        let f = Formula::and([a, b]);
        for core in CORES {
            let (_, stats) = solve_ground_with(&to_nnf(&f), &vt, DEFAULT_DECISION_LIMIT, core);
            assert!(
                stats.decisions <= 2,
                "{core:?}: shared key should mean ≤2 decisions, got {stats:?}"
            );
        }
    }
}
