//! Identifiers for tuple arrays, quantified index variables and ground
//! solver variables.
//!
//! The paper maps each relation occurrence to an index in "an array of
//! tuples corresponding to the base relation" (§V-A); we mirror that: an
//! [`ArraySpec`] declares one array per base relation, with `len` tuple
//! slots and `fields` attributes per tuple. Ground variables are the dense
//! flattening `(array, tuple index, field)` → [`VarId`] computed by
//! [`VarTable`].

use std::fmt;

/// A tuple array (one per base relation in the query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

/// A bound index variable introduced by `FORALL`/`EXISTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QVarId(pub u32);

/// A ground solver variable (one attribute of one tuple slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}
impl fmt::Display for QVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}
impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Declaration of one tuple array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArraySpec {
    /// Human-readable name (base relation name), used in diagnostics.
    pub name: String,
    /// Number of tuple slots.
    pub len: u32,
    /// Number of attributes per tuple.
    pub fields: u32,
}

/// Dense mapping `(array, index, field)` → [`VarId`].
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    /// Per-array base offset into the flat variable space.
    offsets: Vec<u32>,
    specs: Vec<ArraySpec>,
    total: u32,
}

impl VarTable {
    pub fn new(specs: &[ArraySpec]) -> Self {
        let mut offsets = Vec::with_capacity(specs.len());
        let mut total = 0u32;
        for s in specs {
            offsets.push(total);
            total += s.len * s.fields;
        }
        VarTable { offsets, specs: specs.to_vec(), total }
    }

    /// Total number of ground variables.
    pub fn num_vars(&self) -> u32 {
        self.total
    }

    /// The variable for `array[index].field`. Panics on out-of-range
    /// coordinates — callers construct coordinates from the same specs.
    pub fn var(&self, array: ArrayId, index: u32, field: u32) -> VarId {
        let spec = &self.specs[array.0 as usize];
        assert!(index < spec.len, "tuple index {index} out of range for array `{}`", spec.name);
        assert!(field < spec.fields, "field {field} out of range for array `{}`", spec.name);
        VarId(self.offsets[array.0 as usize] + index * spec.fields + field)
    }

    /// Inverse of [`VarTable::var`].
    pub fn coords(&self, v: VarId) -> (ArrayId, u32, u32) {
        let mut a = 0usize;
        while a + 1 < self.offsets.len() && self.offsets[a + 1] <= v.0 {
            a += 1;
        }
        let spec = &self.specs[a];
        let rel = v.0 - self.offsets[a];
        (ArrayId(a as u32), rel / spec.fields, rel % spec.fields)
    }

    pub fn spec(&self, array: ArrayId) -> &ArraySpec {
        &self.specs[array.0 as usize]
    }

    pub fn arrays(&self) -> impl Iterator<Item = (ArrayId, &ArraySpec)> {
        self.specs.iter().enumerate().map(|(i, s)| (ArrayId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VarTable {
        VarTable::new(&[
            ArraySpec { name: "r".into(), len: 2, fields: 3 },
            ArraySpec { name: "s".into(), len: 1, fields: 2 },
        ])
    }

    #[test]
    fn dense_mapping_is_injective() {
        let t = table();
        let mut seen = std::collections::BTreeSet::new();
        for (aid, spec) in t.arrays() {
            for i in 0..spec.len {
                for f in 0..spec.fields {
                    assert!(seen.insert(t.var(aid, i, f)));
                }
            }
        }
        assert_eq!(seen.len() as u32, t.num_vars());
        assert_eq!(t.num_vars(), 8);
    }

    #[test]
    fn coords_roundtrip() {
        let t = table();
        for (aid, spec) in t.arrays().collect::<Vec<_>>() {
            for i in 0..spec.len {
                for f in 0..spec.fields {
                    let v = t.var(aid, i, f);
                    assert_eq!(t.coords(v), (aid, i, f));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        table().var(ArrayId(0), 5, 0);
    }
}
