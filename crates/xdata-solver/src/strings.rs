//! String-predicate support: SQL `LIKE` patterns reduced to
//! dictionary-membership constraints.
//!
//! String attributes are dictionary-coded integers (the catalog assigns
//! each distinct string a code = its dictionary index), so a `LIKE`
//! predicate over a *finite* dictionary is exactly a membership constraint:
//! match the pattern against every dictionary entry once, then constrain
//! the attribute's code to (not) lie in the matching set. This is the
//! "string solver" a finite-domain reproduction needs — sound and complete
//! relative to the dictionary universe, with no automata machinery.
//!
//! [`LikePattern`] implements full SQL semantics for `%` (any sequence)
//! and `_` (any single character); [`membership_formula`] turns a code set
//! into difference-logic structure (`OR` of equalities, or `AND` of
//! disequalities for the negated form). Every formula built increments the
//! `solver.string_constraints` counter.

use crate::atom::{RelOp, Term};
use crate::formula::Formula;

/// A parsed SQL `LIKE` pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikePattern {
    toks: Vec<Tok>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    /// A literal character.
    Lit(char),
    /// `%` — any sequence of characters, including empty.
    Any,
    /// `_` — exactly one character.
    One,
}

impl LikePattern {
    /// Parse `pattern`. Every string is a valid pattern (there is no escape
    /// syntax in the supported dialect).
    pub fn parse(pattern: &str) -> LikePattern {
        let mut toks = Vec::new();
        for c in pattern.chars() {
            match c {
                '%' => {
                    // Collapse runs of `%` (equivalent, and keeps the
                    // matcher's worst case linear in the pattern).
                    if toks.last() != Some(&Tok::Any) {
                        toks.push(Tok::Any);
                    }
                }
                '_' => toks.push(Tok::One),
                c => toks.push(Tok::Lit(c)),
            }
        }
        LikePattern { toks }
    }

    /// SQL `LIKE` match of `s` against this pattern.
    pub fn matches(&self, s: &str) -> bool {
        let s: Vec<char> = s.chars().collect();
        // dp[j] = pattern prefix consumed so far can match s[..j].
        let mut dp = vec![false; s.len() + 1];
        dp[0] = true;
        for t in &self.toks {
            match t {
                Tok::Any => {
                    // Reachable j extends to every j' >= first reachable j.
                    let mut reach = false;
                    for d in dp.iter_mut() {
                        reach |= *d;
                        *d = reach;
                    }
                }
                Tok::One => {
                    for j in (1..=s.len()).rev() {
                        dp[j] = dp[j - 1];
                    }
                    dp[0] = false;
                }
                Tok::Lit(c) => {
                    for j in (1..=s.len()).rev() {
                        dp[j] = dp[j - 1] && s[j - 1] == *c;
                    }
                    dp[0] = false;
                }
            }
        }
        dp[s.len()]
    }

    /// The codes (dictionary indices) of all entries matching this pattern.
    pub fn matching_codes(&self, dictionary: &[String]) -> Vec<i64> {
        dictionary
            .iter()
            .enumerate()
            .filter(|(_, s)| self.matches(s))
            .map(|(i, _)| i as i64)
            .collect()
    }
}

/// Constrain `term` to lie in `codes` (`negated = false`) or outside it
/// (`negated = true`). An empty positive set is `False` (no dictionary
/// entry matches); an empty negated set is `True`.
pub fn membership_formula(term: Term, codes: &[i64], negated: bool) -> Formula {
    xdata_obs::counter("solver.string_constraints", 1);
    if negated {
        Formula::and(codes.iter().map(|&c| Formula::atom(term, RelOp::Ne, Term::Const(c))))
    } else {
        Formula::or(codes.iter().map(|&c| Formula::atom(term, RelOp::Eq, Term::Const(c))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        LikePattern::parse(pat).matches(s)
    }

    #[test]
    fn literal_patterns_match_exactly() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abcd"));
        assert!(!m("abc", "ab"));
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn percent_matches_any_run() {
        assert!(m("a%", "a"));
        assert!(m("a%", "abc"));
        assert!(!m("a%", "ba"));
        assert!(m("%c", "abc"));
        assert!(m("%c", "c"));
        assert!(!m("%c", "cb"));
        assert!(m("%b%", "abc"));
        assert!(m("%b%", "b"));
        assert!(!m("%b%", "ac"));
        assert!(m("%", ""));
        assert!(m("%", "anything"));
        assert!(m("a%c", "abbbc"));
        assert!(m("a%c", "ac"));
        assert!(!m("a%c", "acb"));
    }

    #[test]
    fn underscore_matches_one_char() {
        assert!(m("a_c", "abc"));
        assert!(!m("a_c", "ac"));
        assert!(!m("a_c", "abbc"));
        assert!(m("_", "x"));
        assert!(!m("_", ""));
        assert!(m("_%", "x"));
        assert!(!m("_%", ""));
    }

    #[test]
    fn collapsed_percent_runs_equivalent() {
        assert_eq!(LikePattern::parse("a%%b"), LikePattern::parse("a%b"));
        assert!(m("a%%b", "axyzb"));
    }

    #[test]
    fn unicode_safe() {
        assert!(m("Wü%", "Wüthrich"));
        assert!(m("_ü_", "düo"));
    }

    #[test]
    fn matching_codes_are_dictionary_indices() {
        let dict: Vec<String> =
            ["Wu", "Watson", "Kim", "Wolf"].iter().map(|s| s.to_string()).collect();
        let codes = LikePattern::parse("W%").matching_codes(&dict);
        assert_eq!(codes, vec![0, 1, 3]);
        let codes = LikePattern::parse("%o%").matching_codes(&dict);
        assert_eq!(codes, vec![1, 3]);
    }

    #[test]
    fn membership_formula_shape() {
        let t = Term::Const(0); // shape only; any term works
        assert_eq!(membership_formula(t, &[], false), Formula::False);
        assert_eq!(membership_formula(t, &[], true), Formula::True);
        match membership_formula(t, &[1, 2], false) {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            f => panic!("unexpected {f:?}"),
        }
        match membership_formula(t, &[1, 2], true) {
            Formula::And(parts) => assert_eq!(parts.len(), 2),
            f => panic!("unexpected {f:?}"),
        }
    }
}
