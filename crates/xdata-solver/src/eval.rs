//! Ground evaluation of formulas under a candidate model.
//!
//! Used by the lazy-instantiation mode (to find violated quantifier
//! instances), by the public API to double-check emitted models, and
//! extensively by the test suite as an oracle.

use crate::atom::{Atom, Index, Term};
use crate::formula::Formula;
use crate::ids::{QVarId, VarTable};

/// Evaluate `f` under `model` (indexed by `VarId.0`). Quantifiers are
/// evaluated by enumeration over the array lengths in `vars`.
pub fn eval(f: &Formula, model: &[i64], vars: &VarTable) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(a) => eval_atom(a, model, vars),
        Formula::And(xs) => xs.iter().all(|x| eval(x, model, vars)),
        Formula::Or(xs) => xs.iter().any(|x| eval(x, model, vars)),
        Formula::Not(x) => !eval(x, model, vars),
        Formula::Forall { qv, array, body } => {
            (0..vars.spec(*array).len).all(|i| eval(&body.subst(*qv, i), model, vars))
        }
        Formula::Exists { qv, array, body } => {
            (0..vars.spec(*array).len).any(|i| eval(&body.subst(*qv, i), model, vars))
        }
    }
}

/// Find a witness index for which a `Forall` body fails under `model`, or
/// for which an `Exists` body holds. Returns `None` when `f` is satisfied /
/// has no witness.
pub fn forall_violation(
    qv: QVarId,
    array: crate::ids::ArrayId,
    body: &Formula,
    model: &[i64],
    vars: &VarTable,
) -> Option<u32> {
    (0..vars.spec(array).len).find(|i| !eval(&body.subst(qv, *i), model, vars))
}

fn eval_atom(a: &Atom, model: &[i64], vars: &VarTable) -> bool {
    let lhs = eval_term(&a.lhs, model, vars);
    let rhs = eval_term(&a.rhs, model, vars);
    a.op.eval(lhs, rhs)
}

fn eval_term(t: &Term, model: &[i64], vars: &VarTable) -> i64 {
    match t {
        Term::Const(c) => *c,
        Term::Field { array, index, field, offset } => {
            let i = match index {
                Index::Const(i) => *i,
                Index::Quant(q) => panic!("unbound quantified index {q} in ground evaluation"),
            };
            model[vars.var(*array, i, *field).0 as usize] + offset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::RelOp;
    use crate::ids::{ArrayId, ArraySpec};

    fn vars() -> VarTable {
        VarTable::new(&[ArraySpec { name: "r".into(), len: 3, fields: 2 }])
    }

    #[test]
    fn atom_evaluation_with_offset() {
        let v = vars();
        let model = vec![10, 0, 20, 0, 30, 0];
        // r[1].0 + 10 = r[2].0  →  20 + 10 = 30
        let f = Formula::atom(
            Term::field(ArrayId(0), 1, 0).plus(10),
            RelOp::Eq,
            Term::field(ArrayId(0), 2, 0),
        );
        assert!(eval(&f, &model, &v));
    }

    #[test]
    fn exists_finds_witness() {
        let v = vars();
        let model = vec![10, 0, 20, 0, 30, 0];
        let q = QVarId(0);
        let f = Formula::exists(
            q,
            ArrayId(0),
            Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Eq, Term::Const(20)),
        );
        assert!(eval(&f, &model, &v));
        let g = Formula::exists(
            q,
            ArrayId(0),
            Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Eq, Term::Const(99)),
        );
        assert!(!eval(&g, &model, &v));
    }

    #[test]
    fn forall_violation_reports_first_bad_index() {
        let v = vars();
        let model = vec![10, 0, 20, 0, 30, 0];
        let q = QVarId(0);
        let body = Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Lt, Term::Const(25));
        assert_eq!(forall_violation(q, ArrayId(0), &body, &model, &v), Some(2));
        let ok = Formula::atom(Term::qfield(ArrayId(0), q, 0), RelOp::Lt, Term::Const(99));
        assert_eq!(forall_violation(q, ArrayId(0), &ok, &model, &v), None);
    }

    #[test]
    fn boolean_connectives() {
        let v = vars();
        let model = vec![1, 0, 0, 0, 0, 0];
        let t = Formula::atom(Term::field(ArrayId(0), 0, 0), RelOp::Eq, Term::Const(1));
        let f = Formula::atom(Term::field(ArrayId(0), 0, 0), RelOp::Eq, Term::Const(2));
        assert!(eval(&Formula::and([t.clone(), Formula::not(f.clone())]), &model, &v));
        assert!(eval(&Formula::or([f.clone(), t.clone()]), &model, &v));
        assert!(!eval(&Formula::and([t, f]), &model, &v));
    }
}
