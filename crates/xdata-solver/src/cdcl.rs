//! Conflict-driven clause learning ("CDCL-lite") over ground
//! difference-logic formulas.
//!
//! The engine keeps the DPLL(T) split of the original core — boolean
//! structure is searched, bounds are asserted into the incremental
//! [`DiffLogic`] theory — but replaces chronological backtracking with the
//! modern conflict-driven loop:
//!
//! * **Atoms** are canonicalized ([`crate::search::Key`]) and interned into
//!   a dense index in first-traversal order. A disequality (`=` assigned
//!   false) is not a single bound, so when an `Eq` atom is first falsified
//!   its two *split* atoms `x ≤ k−1` / `x ≥ k+1` are interned together with
//!   the axiom clause `(x = k) ∨ (x ≤ k−1) ∨ (x ≥ k+1)`; clause propagation
//!   then handles the case analysis the DPLL core re-explored by branching
//!   twice. Splitting is lazy because most equalities here are join
//!   conditions that end up true — eagerly tripling the atom count would be
//!   pure setup cost on the common path.
//! * **Propagation** interleaves two mechanisms until fixpoint: unit
//!   propagation over axiom + learned clauses with two watched literals,
//!   and a walk of the formula tree that finds atoms forced true under
//!   conjunctions and single-live-child disjunctions — each such forced
//!   atom gets a *reason clause* computed from the walk, so conflict
//!   analysis can resolve across formula-implied assignments exactly as it
//!   does across clause-implied ones.
//! * **Theory conflicts** come back from [`DiffLogic::assert_all_tagged`]
//!   as the set of literals on the negative cycle (each edge is tagged with
//!   the atom index that asserted it); their negations form the conflict
//!   clause.
//! * **Conflict analysis** resolves the conflict clause backwards along the
//!   trail to the first unique implication point (1-UIP), learns the
//!   asserting clause, and backjumps non-chronologically to the second
//!   highest level in it. Every atom touched during analysis gets its
//!   activity bumped (VSIDS-style, with a multiplicative decay); decisions
//!   pick the live formula atom of highest activity, tie-broken by
//!   traversal order, which keeps runs bit-deterministic.
//! * **Restarts** follow the Luby sequence (base
//!   [`RESTART_BASE`] conflicts) and keep learned clauses, activities and
//!   level-0 units, so each restart re-descends with everything learned.
//!
//! ## Incremental sessions
//!
//! A one-shot [`solve`] builds the engine, searches, and drops it. The
//! [`crate::session`] module instead keeps one engine alive across a whole
//! family of near-identical problems: the shared skeleton is lowered once,
//! each target's delta constraints are guarded by a fresh
//! [`Key::Selector`] atom (`¬selectorᵢ ∨ deltaᵢ`), and each solve runs
//! under **assumptions** — one decision level per registered selector,
//! asserting exactly the current target's selector true. Because the
//! guards are ordinary parts of one monolithic formula, every clause
//! learned while solving one target is globally valid for all the others,
//! so learned clauses, VSIDS activities, and saved phases all carry over.
//! An assumption found false at establishment time is *analyzed*
//! ([`Cdcl::analyze_final`]) into a failed-assumption core rather than
//! treated as a search conflict: the target is unsatisfiable, the session
//! stays healthy.
//!
//! Retention is bounded: learned clauses are tagged with their LBD
//! (literal block distance) at learn time, and sessions periodically age
//! the database ([`Cdcl::reduce_db`]), tombstoning the worst half of the
//! removable learned clauses (high LBD first). Axioms, glue clauses
//! (LBD ≤ 2), units, and reason clauses of level-0 facts are never
//! dropped. One-shot solves never reach the reduction threshold, so their
//! behavior is byte-identical to the pre-session engine; phase saving is
//! likewise gated to sessions ([`Cdcl::use_saved_phases`]).

use std::collections::HashMap;

use xdata_par::CancelToken;

use crate::formula::Formula;
use crate::ids::VarTable;
use crate::search::{canon, CanonOp, GroundResult, Key, SearchStats, CANCEL_CHECK_INTERVAL};
use crate::theory::DiffLogic;

/// A literal: atom index shifted left, low bit = assigned value.
pub(crate) type Lit = u32;

pub(crate) fn lit(atom: u32, value: bool) -> Lit {
    (atom << 1) | value as u32
}
fn lit_atom(l: Lit) -> u32 {
    l >> 1
}
fn lit_value(l: Lit) -> bool {
    l & 1 == 1
}
fn lit_neg(l: Lit) -> Lit {
    l ^ 1
}

/// Conflicts before the first restart; subsequent limits follow
/// `RESTART_BASE * luby(i)`. Small, because X-Data's per-target ground
/// problems are small — typical conflict totals are in the tens, a restart
/// is cheap (clauses and activities are kept), and an early one often
/// escapes an unlucky first descent.
const RESTART_BASE: u64 = 4;

/// The Luby sequence 1, 1, 2, 1, 1, 2, 4, … (1-based index).
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Why an atom is assigned.
enum Reason {
    /// Unassigned (or assignment undone).
    None,
    /// A decision: no antecedent.
    Decision,
    /// Propagated by clause `clauses[i]`.
    Clause(u32),
    /// Forced by the formula walk; the computed reason clause is stored
    /// inline (`lits[0]` is the implied literal, the rest are the negated
    /// forcing assignment).
    Local(Vec<Lit>),
}

struct Clause {
    lits: Vec<Lit>,
    /// Literal block distance at learn time (0 for axioms): the number of
    /// distinct non-root decision levels in the clause. Low LBD ("glue")
    /// clauses connect few levels and are kept forever by the reducer.
    lbd: u64,
    /// True for clauses from conflict analysis, false for Eq-split axioms.
    /// Only learned clauses are eligible for clause-DB reduction.
    learned: bool,
    /// Tombstone set by [`Cdcl::reduce_db`]; dead clauses are skipped and
    /// lazily dropped from watch lists during propagation.
    dead: bool,
}

/// The input formula lowered to dense atom indices. Canonicalization and
/// hash lookups happen once, in [`Cdcl::lower`]; the walk/evaluation hot
/// path then runs on plain array indexing.
pub(crate) enum IF {
    True,
    False,
    Atom(u32),
    And(Vec<IF>),
    Or(Vec<IF>),
    Not(Box<IF>),
}

enum Walk {
    /// Formula satisfied under the current assignment.
    True,
    /// Propagation fixpoint with a genuine choice point on this atom.
    Branch(u32),
}

/// Walk verdict for one subformula.
enum Ev {
    True,
    False,
    /// Undecided. `score == 1` means the atom is forced true here (unit) and
    /// `reason` holds the currently-true literals forcing it.
    Undef { pick: u32, score: u32, reason: Option<Vec<Lit>> },
}

/// The CDCL engine. One-shot solves ([`solve`]) build and drop it; the
/// incremental session ([`crate::session`]) owns one long-lived instance,
/// which is why it owns its [`VarTable`] and [`CancelToken`] instead of
/// borrowing them.
pub(crate) struct Cdcl {
    vars: VarTable,
    th: DiffLogic,
    /// Canonical key → dense atom index, assigned in traversal order.
    index: HashMap<Key, u32>,
    keys: Vec<Key>,
    /// For `Eq` atoms: the interned `≤ k−1` / `≥ k+1` split atoms.
    splits: Vec<Option<(u32, u32)>>,
    eq_atoms: Vec<u32>,
    value: Vec<Option<bool>>,
    level_of: Vec<u32>,
    reason: Vec<Reason>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    activity: Vec<f64>,
    act_inc: f64,
    trail: Vec<u32>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    qhead: usize,
    clauses: Vec<Clause>,
    /// Learned unit literals with their clause index, re-asserted after
    /// restarts (size-1 clauses have no watch pair).
    units: Vec<(Lit, u32)>,
    /// `watches[l]`: clauses currently watching literal `l`, visited when
    /// `l` becomes false.
    watches: Vec<Vec<u32>>,
    stats: SearchStats,
    decision_limit: u64,
    cancel: CancelToken,
    /// Main-loop iterations since start, for the cancellation cadence.
    steps: u64,
    /// Backjump depth (levels unwound) per conflict, for the
    /// `solver.backjump_depth` histogram.
    backjumps: Vec<u64>,
    /// LBD of each clause learned this solve, for the `solver.clause_lbd`
    /// histogram.
    lbds: Vec<u64>,
    luby_idx: u64,
    conflicts_since_restart: u64,
    restart_threshold: u64,
    /// Last saved polarity per atom, recorded on unassignment. Only honored
    /// when `use_saved_phases` is set (incremental sessions): one-shot
    /// solves keep the seed engine's always-true-first descent.
    saved_phase: Vec<Option<bool>>,
    use_saved_phases: bool,
    /// Assumption literals for the current solve, one decision level each,
    /// established in order before any free decision is made.
    assumptions: Vec<Lit>,
    /// Set when `search` returned [`GroundResult::Unsat`] *independently of
    /// the assumptions* (level-0 conflict or empty resolvent): the formula
    /// itself is unsatisfiable and a session can poison itself.
    global_unsat: bool,
    /// The failed-assumption core from the most recent assumption-rejected
    /// solve: a subset of the assumption literals (plus the failed literal
    /// itself) whose conjunction the formula refutes.
    failed_core: Vec<Lit>,
    /// `th.relaxations` at the start of the current solve, so per-solve
    /// stats report a delta rather than a session-lifetime total.
    relax_start: u64,
}

impl Cdcl {
    pub(crate) fn new(vars: VarTable, decision_limit: u64, cancel: CancelToken) -> Self {
        let num_vars = vars.num_vars();
        Cdcl {
            vars,
            th: DiffLogic::new(num_vars),
            index: HashMap::new(),
            keys: Vec::new(),
            splits: Vec::new(),
            eq_atoms: Vec::new(),
            value: Vec::new(),
            level_of: Vec::new(),
            reason: Vec::new(),
            seen: Vec::new(),
            activity: Vec::new(),
            act_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            clauses: Vec::new(),
            units: Vec::new(),
            watches: Vec::new(),
            stats: SearchStats::default(),
            decision_limit,
            cancel,
            steps: 0,
            backjumps: Vec::new(),
            lbds: Vec::new(),
            luby_idx: 1,
            conflicts_since_restart: 0,
            restart_threshold: RESTART_BASE * luby(1),
            saved_phase: Vec::new(),
            use_saved_phases: false,
            assumptions: Vec::new(),
            global_unsat: false,
            failed_core: Vec::new(),
            relax_start: 0,
        }
    }

    fn intern(&mut self, key: Key) -> u32 {
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.keys.len() as u32;
        self.index.insert(key, i);
        self.keys.push(key);
        self.splits.push(None);
        self.value.push(None);
        self.level_of.push(0);
        self.reason.push(Reason::None);
        self.seen.push(false);
        self.activity.push(0.0);
        self.saved_phase.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        if key.op() == CanonOp::Eq {
            // Split atoms and the totality axiom are interned lazily, on
            // first falsification (`on_eq_false`): equalities in these
            // workloads are mostly joins that hold, so the eager 3× atom
            // blow-up would be pure setup cost.
            self.eq_atoms.push(i);
        }
        i
    }

    /// React to a disequality: intern the `≤ k−1` / `≥ k+1` split atoms of
    /// `a` and the axiom `(x = k) ∨ (x ≤ k−1) ∨ (x ≥ k+1)` on first
    /// falsification, and apply whatever the axiom forces right now (the
    /// split atoms may pre-exist as formula atoms, already assigned).
    fn on_eq_false(&mut self, a: u32) -> Result<(), Vec<Lit>> {
        if self.splits[a as usize].is_some() {
            // Axiom clause already installed; two-watched-literal
            // propagation keeps it honest from here on.
            return Ok(());
        }
        let key = self.keys[a as usize];
        let lo = self.intern(key.with_op(CanonOp::Le, key.k() - 1));
        let hi = self.intern(key.with_op(CanonOp::Ge, key.k() + 1));
        self.splits[a as usize] = Some((lo, hi));
        let (l_lo, l_hi) = (lit(lo, true), lit(hi, true));
        let ci = self.clauses.len() as u32;
        let lits = vec![l_lo, l_hi, lit(a, true)];
        self.watches[l_lo as usize].push(ci);
        self.watches[l_hi as usize].push(ci);
        self.clauses.push(Clause { lits, lbd: 0, learned: false, dead: false });
        // `a` is false; the pre-existing assignments of lo/hi decide
        // whether the new clause is already unit or false.
        match (self.lit_is(l_lo), self.lit_is(l_hi)) {
            (Some(false), Some(false)) => Err(self.clauses[ci as usize].lits.clone()),
            (Some(false), None) => {
                self.stats.propagations += 1;
                self.enqueue(l_hi, Reason::Clause(ci))
            }
            (None, Some(false)) => {
                self.stats.propagations += 1;
                self.enqueue(l_lo, Reason::Clause(ci))
            }
            _ => Ok(()),
        }
    }

    /// Canonicalize and intern every atom once, producing the dense-index
    /// mirror of the formula the search runs on.
    fn lower(&mut self, f: &Formula) -> IF {
        match f {
            Formula::True => IF::True,
            Formula::False => IF::False,
            Formula::Atom(a) => match canon(a.to_diff(&self.vars)) {
                Err(true) => IF::True,
                Err(false) => IF::False,
                Ok(key) => IF::Atom(self.intern(key)),
            },
            Formula::And(xs) => IF::And(xs.iter().map(|x| self.lower(x)).collect()),
            Formula::Or(xs) => IF::Or(xs.iter().map(|x| self.lower(x)).collect()),
            Formula::Not(x) => IF::Not(Box::new(self.lower(x))),
            Formula::Forall { .. } | Formula::Exists { .. } => {
                panic!("quantifier reached ground search; unfold or instantiate first")
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn lit_is(&self, l: Lit) -> Option<bool> {
        self.value[lit_atom(l) as usize].map(|v| v == lit_value(l))
    }

    /// Assign a literal and assert its bounds into the theory. On a theory
    /// conflict, returns the conflict clause (negations of the literals on
    /// the negative cycle); the assignment stays on the trail for the
    /// subsequent backjump to unwind.
    fn enqueue(&mut self, l: Lit, reason: Reason) -> Result<(), Vec<Lit>> {
        let a = lit_atom(l);
        let v = lit_value(l);
        debug_assert!(self.value[a as usize].is_none(), "enqueue of assigned atom");
        self.value[a as usize] = Some(v);
        self.level_of[a as usize] = self.decision_level();
        self.reason[a as usize] = reason;
        self.trail.push(a);
        // One theory level per assignment keeps backjumping 1:1 (Eq-false
        // asserts nothing; the level marker is simply empty).
        self.th.push_level();
        match self.keys[a as usize].bounds_when(v, self.th.zero()) {
            Some(bounds) => {
                if let Err(tags) = self.th.assert_all_tagged(&bounds, a) {
                    let confl = tags
                        .iter()
                        .map(|&t| {
                            let tv =
                                self.value[t as usize].expect("explained atoms are assigned");
                            lit(t, !tv)
                        })
                        .collect();
                    return Err(confl);
                }
                Ok(())
            }
            // Only a falsified equality has no direct bound: split it.
            None => self.on_eq_false(a),
        }
    }

    /// Put the scanned watch list for `p` back, keeping any watchers added
    /// behind our back while it was taken (lazy Eq-splitting inside
    /// `enqueue` can install an axiom clause watching `p` itself).
    fn restore_watches(&mut self, p: Lit, ws: Vec<u32>) {
        let added = std::mem::replace(&mut self.watches[p as usize], ws);
        self.watches[p as usize].extend(added);
    }

    /// Two-watched-literal unit propagation over axiom + learned clauses.
    fn propagate_clauses(&mut self) -> Result<(), Vec<Lit>> {
        while self.qhead < self.trail.len() {
            let a = self.trail[self.qhead];
            self.qhead += 1;
            let v = self.value[a as usize].expect("on trail");
            let p = lit(a, !v); // the literal that just became false
            let mut ws = std::mem::take(&mut self.watches[p as usize]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i];
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.dead {
                        // Tombstoned by clause-DB reduction: drop the stale
                        // watch entry lazily, here.
                        ws.swap_remove(i);
                        continue;
                    }
                    if c.lits[0] == p {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_is(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch among the tail literals.
                let len = self.clauses[ci as usize].lits.len();
                for j in 2..len {
                    let lj = self.clauses[ci as usize].lits[j];
                    if self.lit_is(lj) != Some(false) {
                        self.clauses[ci as usize].lits.swap(1, j);
                        self.watches[lj as usize].push(ci);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // No replacement: the clause is unit on `first` or false.
                if self.lit_is(first) == Some(false) {
                    let confl = self.clauses[ci as usize].lits.clone();
                    self.restore_watches(p, ws);
                    return Err(confl);
                }
                self.stats.propagations += 1;
                if let Err(confl) = self.enqueue(first, Reason::Clause(ci)) {
                    self.restore_watches(p, ws);
                    return Err(confl);
                }
                i += 1;
            }
            self.restore_watches(p, ws);
        }
        Ok(())
    }

    /// Plain evaluation under the current partial assignment.
    fn eval_bool(&self, f: &IF) -> Option<bool> {
        match f {
            IF::True => Some(true),
            IF::False => Some(false),
            IF::Atom(i) => self.value[*i as usize],
            IF::And(xs) => {
                let mut all = Some(true);
                for x in xs {
                    match self.eval_bool(x) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all = None,
                    }
                }
                all
            }
            IF::Or(xs) => {
                let mut any = Some(false);
                for x in xs {
                    match self.eval_bool(x) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any = None,
                    }
                }
                any
            }
            IF::Not(x) => self.eval_bool(x).map(|b| !b),
        }
    }

    /// Collect currently-true literals forcing `f` false (`f` must evaluate
    /// to false).
    fn false_lits(&self, f: &IF, out: &mut Vec<Lit>) {
        match f {
            IF::False => {}
            IF::Atom(i) => out.push(lit(*i, false)),
            IF::And(xs) => {
                let x = xs
                    .iter()
                    .find(|x| self.eval_bool(x) == Some(false))
                    .expect("a false And has a false child");
                self.false_lits(x, out);
            }
            IF::Or(xs) => {
                for x in xs {
                    self.false_lits(x, out);
                }
            }
            IF::Not(x) => self.true_lits(x, out),
            IF::True => unreachable!("false_lits on non-false formula"),
        }
    }

    /// Collect currently-true literals forcing `f` true (`f` must evaluate
    /// to true).
    fn true_lits(&self, f: &IF, out: &mut Vec<Lit>) {
        match f {
            IF::True => {}
            IF::Atom(i) => out.push(lit(*i, true)),
            IF::And(xs) => {
                for x in xs {
                    self.true_lits(x, out);
                }
            }
            IF::Or(xs) => {
                let x = xs
                    .iter()
                    .find(|x| self.eval_bool(x) == Some(true))
                    .expect("a true Or has a true child");
                self.true_lits(x, out);
            }
            IF::Not(x) => self.false_lits(x, out),
            IF::False => unreachable!("true_lits on non-true formula"),
        }
    }

    /// Walk the formula: verdict, unit pick with reason, or the
    /// highest-activity branch candidate.
    fn walk(&self, f: &IF) -> Ev {
        match f {
            IF::True => Ev::True,
            IF::False => Ev::False,
            IF::Atom(i) => match self.value[*i as usize] {
                Some(true) => Ev::True,
                Some(false) => Ev::False,
                None => Ev::Undef { pick: *i, score: 1, reason: Some(Vec::new()) },
            },
            IF::And(xs) => {
                let mut best: Option<(u32, u32)> = None;
                for x in xs {
                    match self.walk(x) {
                        Ev::False => return Ev::False,
                        Ev::True => {}
                        ev @ Ev::Undef { score: 1, .. } => return ev,
                        Ev::Undef { pick, score, .. } => {
                            let better = match best {
                                None => true,
                                Some((b, _)) => {
                                    self.activity[pick as usize] > self.activity[b as usize]
                                }
                            };
                            if better {
                                best = Some((pick, score));
                            }
                        }
                    }
                }
                match best {
                    None => Ev::True,
                    Some((pick, score)) => Ev::Undef { pick, score, reason: None },
                }
            }
            IF::Or(xs) => {
                // Track the live children without building a list: only a
                // single live child needs its index and reason kept.
                let mut nlive = 0usize;
                let mut single: Option<(usize, u32, u32, Option<Vec<Lit>>)> = None;
                let mut best: (u32, u32) = (0, 0);
                for (xi, x) in xs.iter().enumerate() {
                    match self.walk(x) {
                        Ev::True => return Ev::True,
                        Ev::False => {}
                        Ev::Undef { pick, score, reason } => {
                            nlive += 1;
                            if nlive == 1 {
                                single = Some((xi, pick, score, reason));
                            } else {
                                if nlive == 2 {
                                    let (_, p0, s0, _) =
                                        single.take().expect("set by the first live child");
                                    best = (p0, s0);
                                }
                                if self.activity[pick as usize]
                                    > self.activity[best.0 as usize]
                                {
                                    best = (pick, score);
                                }
                            }
                        }
                    }
                }
                match nlive {
                    0 => Ev::False,
                    // Single live child: forced. If the child is itself
                    // unit, the false siblings join its reason.
                    1 => {
                        let (xi, pick, score, reason) =
                            single.expect("exactly one live child");
                        if score == 1 {
                            let mut r = reason.expect("unit pick carries a reason");
                            for (yi, y) in xs.iter().enumerate() {
                                if yi != xi {
                                    self.false_lits(y, &mut r);
                                }
                            }
                            Ev::Undef { pick, score: 1, reason: Some(r) }
                        } else {
                            Ev::Undef { pick, score, reason: None }
                        }
                    }
                    // Genuine choice point: highest-activity candidate,
                    // tie-broken by child order.
                    k => Ev::Undef {
                        pick: best.0,
                        score: best.1.max(k as u32),
                        reason: None,
                    },
                }
            }
            IF::Not(x) => match self.walk(x) {
                Ev::True => Ev::False,
                Ev::False => Ev::True,
                // Under negation "forced true" flips meaning; NNF input
                // never has Not, but stay sound for raw callers.
                Ev::Undef { pick, score, .. } => {
                    Ev::Undef { pick, score: score.max(2), reason: None }
                }
            },
        }
    }

    /// Run clause + formula propagation to fixpoint.
    fn propagate(&mut self, root: &IF) -> Result<Walk, Vec<Lit>> {
        loop {
            self.propagate_clauses()?;
            match self.walk(root) {
                Ev::True => return Ok(Walk::True),
                Ev::False => {
                    let mut r = Vec::new();
                    self.false_lits(root, &mut r);
                    return Err(r.iter().map(|&l| lit_neg(l)).collect());
                }
                Ev::Undef { pick, score: 1, reason: Some(r) } => {
                    let implied = lit(pick, true);
                    let mut rc = Vec::with_capacity(r.len() + 1);
                    rc.push(implied);
                    rc.extend(r.iter().map(|&l| lit_neg(l)));
                    self.stats.propagations += 1;
                    self.enqueue(implied, Reason::Local(rc))?;
                }
                Ev::Undef { pick, .. } => return Ok(Walk::Branch(pick)),
            }
        }
    }

    fn bump(&mut self, a: u32) {
        self.activity[a as usize] += self.act_inc;
        if self.activity[a as usize] > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// 1-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first, a highest-remaining-level literal second) and the
    /// backjump level, or `None` when the conflict resolves to the empty
    /// clause (unsatisfiable).
    fn analyze(&mut self, conflict: &[Lit]) -> Option<(Vec<Lit>, u32)> {
        let cur = self.decision_level();
        debug_assert!(cur > 0);
        let mut learned: Vec<Lit> = vec![0]; // slot 0: the UIP literal
        let mut counter = 0usize;
        let mut to_clear: Vec<u32> = Vec::new();
        let mut idx = self.trail.len();
        let mut pivot: Option<u32> = None;
        let mut lits_buf: Vec<Lit> = conflict.to_vec();
        loop {
            for &q in &lits_buf {
                let a = lit_atom(q);
                if pivot == Some(a) || self.seen[a as usize] {
                    continue;
                }
                if self.level_of[a as usize] == 0 {
                    // Level-0 facts are globally implied; drop them.
                    continue;
                }
                self.seen[a as usize] = true;
                to_clear.push(a);
                self.bump(a);
                if self.level_of[a as usize] == cur {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            if counter == 0 {
                // No current-level literals at all: the conflict is implied
                // below the current level. With propagation run to fixpoint
                // at every level this only happens when the resolvent is
                // empty — unsatisfiable.
                for a in to_clear {
                    self.seen[a as usize] = false;
                }
                return None;
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                debug_assert!(idx > 0, "analysis ran off the trail");
                idx -= 1;
                if self.seen[self.trail[idx] as usize] {
                    break;
                }
            }
            let a = self.trail[idx];
            self.seen[a as usize] = false;
            counter -= 1;
            if counter == 0 {
                // `a` is the first unique implication point.
                let v = self.value[a as usize].expect("on trail");
                learned[0] = lit(a, !v);
                break;
            }
            // Resolve with the reason of `a`.
            pivot = Some(a);
            lits_buf = match &self.reason[a as usize] {
                Reason::Clause(ci) => self.clauses[*ci as usize].lits.clone(),
                Reason::Local(lits) => lits.clone(),
                Reason::Decision => {
                    unreachable!("the decision is consumed last at its level")
                }
                Reason::None => unreachable!("assigned atom without reason"),
            };
        }
        for a in to_clear {
            self.seen[a as usize] = false;
        }
        if learned.len() == 1 {
            return Some((learned, 0));
        }
        // Backjump level: highest level among the non-UIP literals; keep
        // one literal of that level in the second watch slot.
        let mut bi = 1;
        let mut bl = self.level_of[lit_atom(learned[1]) as usize];
        for (i, &l) in learned.iter().enumerate().skip(2) {
            let lv = self.level_of[lit_atom(l) as usize];
            if lv > bl {
                bl = lv;
                bi = i;
            }
        }
        learned.swap(1, bi);
        Some((learned, bl))
    }

    /// Unassign everything above `bl` and make it the current level.
    fn backjump(&mut self, bl: u32) {
        if self.decision_level() <= bl {
            return;
        }
        let target = self.trail_lim[bl as usize];
        while self.trail.len() > target {
            let a = self.trail.pop().expect("len checked");
            // Phase saving: remember the polarity this atom last held, so a
            // session's next descent can retry it (gated by
            // `use_saved_phases` at decision time).
            self.saved_phase[a as usize] = self.value[a as usize];
            self.value[a as usize] = None;
            self.reason[a as usize] = Reason::None;
            self.th.pop_level();
        }
        self.trail_lim.truncate(bl as usize);
        self.qhead = self.trail.len();
    }

    /// Literal block distance of a (learned) clause: distinct non-root
    /// decision levels among its literals, computed at learn time (before
    /// the backjump unassigns the UIP).
    fn clause_lbd(&self, lits: &[Lit]) -> u64 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|&l| self.level_of[lit_atom(l) as usize])
            .filter(|&lv| lv != 0)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u64
    }

    /// Install a learned clause and assert its UIP literal.
    fn learn_and_assert(&mut self, learned: Vec<Lit>, lbd: u64) -> Result<(), Vec<Lit>> {
        self.stats.learned_clauses += 1;
        let ci = self.clauses.len() as u32;
        let l0 = learned[0];
        if learned.len() >= 2 {
            self.watches[learned[0] as usize].push(ci);
            self.watches[learned[1] as usize].push(ci);
        } else {
            self.units.push((l0, ci));
        }
        self.clauses.push(Clause { lits: learned, lbd, learned: true, dead: false });
        match self.lit_is(l0) {
            None => self.enqueue(l0, Reason::Clause(ci)),
            Some(true) => Ok(()),
            Some(false) => Err(self.clauses[ci as usize].lits.clone()),
        }
    }

    /// Re-assert learned unit literals after a restart (they carry no watch
    /// pair, so clause propagation alone would not recover them).
    fn reassert_units(&mut self) -> Result<(), Vec<Lit>> {
        for i in 0..self.units.len() {
            let (l, ci) = self.units[i];
            match self.lit_is(l) {
                Some(true) => {}
                Some(false) => return Err(vec![l]),
                None => self.enqueue(l, Reason::Clause(ci))?,
            }
        }
        Ok(())
    }

    /// The `<` split atom of the first false disequality whose two split
    /// sides are both still open, if any. A model is only valid once every
    /// false `Eq` has a strict side asserted in the theory (the axiom
    /// clause forces one side as soon as the other dies, so "both open" is
    /// the only case needing a decision).
    fn pending_eq_split(&self) -> Option<u32> {
        for &e in &self.eq_atoms {
            if self.value[e as usize] == Some(false) {
                let (lo, hi) = self.splits[e as usize].expect("eq atoms have splits");
                if self.value[lo as usize] != Some(true) && self.value[hi as usize] != Some(true)
                {
                    return Some(lo);
                }
            }
        }
        None
    }

    fn decide(&mut self, a: u32) -> Option<Vec<Lit>> {
        self.stats.decisions += 1;
        self.trail_lim.push(self.trail.len());
        // Try the true phase first, like the DPLL core's branch order —
        // unless this is a session solve and the atom has a saved phase
        // from an earlier descent, in which case re-descend with that.
        let phase = if self.use_saved_phases {
            match self.saved_phase[a as usize] {
                Some(p) => {
                    self.stats.phase_saves += 1;
                    p
                }
                None => true,
            }
        } else {
            true
        };
        self.enqueue(lit(a, phase), Reason::Decision).err()
    }

    /// Walk `failed`'s implication graph down to the assumption decisions
    /// that entail its negation: the returned *failed-assumption core*
    /// (`failed` plus a subset of the established assumption literals) is a
    /// set whose conjunction the formula refutes. Called when assumption
    /// establishment finds `failed` already assigned false; every decision
    /// on the trail at that point is itself an assumption.
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            // Refuted by level-0 facts alone: the core is the literal
            // itself (e.g. a learned unit clause killed this selector).
            return core;
        }
        let a0 = lit_atom(failed);
        self.seen[a0 as usize] = true;
        let mut to_clear = vec![a0];
        let base = self.trail_lim[0];
        for i in (base..self.trail.len()).rev() {
            let a = self.trail[i];
            if !self.seen[a as usize] {
                continue;
            }
            match &self.reason[a as usize] {
                Reason::Decision => {
                    // Establishment runs before any free decision, so a
                    // Decision-reasoned trail literal here is an assumption.
                    let v = self.value[a as usize].expect("on trail");
                    core.push(lit(a, v));
                }
                Reason::Clause(ci) => {
                    let lits = self.clauses[*ci as usize].lits.clone();
                    for l in lits {
                        let la = lit_atom(l);
                        if la != a && self.level_of[la as usize] > 0 && !self.seen[la as usize]
                        {
                            self.seen[la as usize] = true;
                            to_clear.push(la);
                        }
                    }
                }
                Reason::Local(lits) => {
                    for l in lits.clone() {
                        let la = lit_atom(l);
                        if la != a && self.level_of[la as usize] > 0 && !self.seen[la as usize]
                        {
                            self.seen[la as usize] = true;
                            to_clear.push(la);
                        }
                    }
                }
                Reason::None => unreachable!("assigned atom without reason"),
            }
        }
        for a in to_clear {
            self.seen[a as usize] = false;
        }
        core
    }

    fn search(&mut self, root: &IF) -> GroundResult {
        let mut conflict: Option<Vec<Lit>> = None;
        loop {
            if self.steps.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                self.stats.cancel_checks += 1;
                if self.cancel.is_cancelled() {
                    return GroundResult::Cancelled;
                }
            }
            self.steps += 1;
            if let Some(c) = conflict.take() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 || c.is_empty() {
                    // Conflicting at level 0 means the formula itself (not
                    // any assumption) is refuted.
                    self.global_unsat = true;
                    return GroundResult::Unsat;
                }
                let Some((learned, bl)) = self.analyze(&c) else {
                    self.global_unsat = true;
                    return GroundResult::Unsat;
                };
                let lbd = self.clause_lbd(&learned);
                self.lbds.push(lbd);
                self.backjumps.push(u64::from(self.decision_level() - bl));
                self.backjump(bl);
                if let Err(c2) = self.learn_and_assert(learned, lbd) {
                    conflict = Some(c2);
                }
                self.act_inc /= 0.95;
                self.conflicts_since_restart += 1;
                if conflict.is_none() && self.conflicts_since_restart >= self.restart_threshold {
                    self.stats.restarts += 1;
                    xdata_obs::instant("solver.restart", || {
                        format!(
                            "after {} conflicts (luby {}, {} learned)",
                            self.stats.conflicts, self.luby_idx, self.stats.learned_clauses
                        )
                    });
                    self.conflicts_since_restart = 0;
                    self.luby_idx += 1;
                    self.restart_threshold = RESTART_BASE * luby(self.luby_idx);
                    self.backjump(0);
                    if let Err(c2) = self.reassert_units() {
                        conflict = Some(c2);
                    }
                }
                continue;
            }
            match self.propagate(root) {
                Err(c) => conflict = Some(c),
                Ok(walk) => {
                    // Establish pending assumptions — one decision level
                    // per assumption, in order — before honoring the walk
                    // verdict (which may hinge on still-unassigned
                    // selectors). Propagation runs to fixpoint between
                    // establishments, preserving the invariant conflict
                    // analysis relies on (any conflict involves a
                    // current-level literal). Assumptions are not counted
                    // as decisions and not budget-checked, so budget
                    // verdicts stay comparable with fresh solves.
                    if (self.decision_level() as usize) < self.assumptions.len() {
                        let l = self.assumptions[self.decision_level() as usize];
                        match self.lit_is(l) {
                            Some(true) => {
                                // Already implied: open an empty level so
                                // level index keeps matching assumption
                                // index.
                                self.trail_lim.push(self.trail.len());
                            }
                            Some(false) => {
                                // The formula (under the earlier
                                // assumptions) refutes this assumption:
                                // unsatisfiable for this target only.
                                self.failed_core = self.analyze_final(l);
                                return GroundResult::Unsat;
                            }
                            None => {
                                self.trail_lim.push(self.trail.len());
                                conflict = self.enqueue(l, Reason::Decision).err();
                            }
                        }
                        continue;
                    }
                    match walk {
                        Walk::True => match self.pending_eq_split() {
                            None => return GroundResult::Sat(self.th.model()),
                            Some(a) => {
                                if self.stats.decisions >= self.decision_limit {
                                    return GroundResult::Unknown;
                                }
                                conflict = self.decide(a);
                            }
                        },
                        Walk::Branch(a) => {
                            if self.stats.decisions >= self.decision_limit {
                                return GroundResult::Unknown;
                            }
                            conflict = self.decide(a);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Incremental-session API (used by `crate::session`).
    // ------------------------------------------------------------------

    /// Lower a ground formula into the engine's dense atom space. Sessions
    /// call this once for the skeleton and once per target delta.
    pub(crate) fn lower_formula(&mut self, f: &Formula) -> IF {
        self.lower(f)
    }

    /// Intern the selector atom for target `id` and return its dense index.
    pub(crate) fn intern_selector(&mut self, id: u32) -> u32 {
        self.intern(Key::Selector { id })
    }

    /// Reset per-solve state: stats, step counter, histograms, budget, and
    /// the cancellation token. Retained across solves: atoms, clauses,
    /// learned units, VSIDS activities, saved phases, level-0 trail, and
    /// the theory state — that retention is the whole point of a session.
    pub(crate) fn begin_solve(
        &mut self,
        decision_limit: u64,
        cancel: CancelToken,
        assumptions: Vec<Lit>,
    ) {
        debug_assert_eq!(self.decision_level(), 0, "begin_solve above level 0");
        self.stats = SearchStats::default();
        self.steps = 0;
        self.backjumps.clear();
        self.lbds.clear();
        self.decision_limit = decision_limit;
        self.cancel = cancel;
        self.assumptions = assumptions;
        self.use_saved_phases = true;
        self.luby_idx = 1;
        self.conflicts_since_restart = 0;
        self.restart_threshold = RESTART_BASE * luby(1);
        self.relax_start = self.th.relaxations;
    }

    /// Run the search for the current target (after [`Cdcl::begin_solve`])
    /// and return the engine to level 0, keeping everything learned. The
    /// model (if any) is captured before unwinding.
    pub(crate) fn solve_current(&mut self, root: &IF) -> GroundResult {
        let result = self.search(root);
        self.backjump(0);
        self.stats.theory_relaxations = self.th.relaxations - self.relax_start;
        if matches!(result, GroundResult::Unknown) {
            self.stats.unknown_exits = 1;
        }
        debug_assert_eq!(
            self.th.depth(),
            self.trail.len(),
            "one theory level per trail entry (session handback invariant)"
        );
        result
    }

    /// Age the learned-clause database: when more than
    /// [`REDUCE_THRESHOLD`] removable learned clauses have accumulated,
    /// tombstone the worst half (highest LBD first; oldest first among
    /// ties). Protected and never dropped: axioms, glue clauses (LBD ≤ 2),
    /// learned units, and reason clauses of current (level-0) trail
    /// literals. Sessions call this between targets, at level 0; one-shot
    /// solves never reach the threshold.
    pub(crate) fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0, "reduce_db above level 0");
        let mut protected = vec![false; self.clauses.len()];
        for &a in &self.trail {
            if let Reason::Clause(ci) = self.reason[a as usize] {
                protected[ci as usize] = true;
            }
        }
        let mut removable: Vec<(u64, u32)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(ci, c)| {
                c.learned && !c.dead && c.lits.len() >= 2 && c.lbd > 2 && !protected[*ci]
            })
            .map(|(ci, c)| (c.lbd, ci as u32))
            .collect();
        if removable.len() <= REDUCE_THRESHOLD {
            return;
        }
        // Keep low-LBD and recent: sort so the tail holds high-LBD clauses,
        // oldest first among equals, and tombstone that tail.
        removable.sort_by_key(|&(lbd, ci)| (lbd, std::cmp::Reverse(ci)));
        let drop_n = removable.len() / 2;
        for &(_, ci) in &removable[removable.len() - drop_n..] {
            let c = &mut self.clauses[ci as usize];
            c.dead = true;
            // Reclaim the literal storage now; watch-list entries are
            // dropped lazily during propagation.
            c.lits = Vec::new();
        }
        self.stats.clause_db_dropped = drop_n as u64;
        self.stats.clause_db_kept = self.live_learned_clauses() as u64;
    }

    /// Learned clauses currently alive (not tombstoned).
    pub(crate) fn live_learned_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| c.learned && !c.dead).count()
    }

    /// Number of interned atoms.
    pub(crate) fn atom_count(&self) -> usize {
        self.keys.len()
    }

    pub(crate) fn stats(&self) -> &SearchStats {
        &self.stats
    }

    pub(crate) fn backjumps(&self) -> &[u64] {
        &self.backjumps
    }

    pub(crate) fn lbds(&self) -> &[u64] {
        &self.lbds
    }

    pub(crate) fn global_unsat(&self) -> bool {
        self.global_unsat
    }

    pub(crate) fn failed_core(&self) -> &[Lit] {
        &self.failed_core
    }
}

/// Removable learned clauses tolerated before [`Cdcl::reduce_db`] ages the
/// database. Far above what any single X-Data target learns, so one-shot
/// solves behave exactly as before sessions existed.
const REDUCE_THRESHOLD: usize = 512;

/// Solve a ground NNF formula with a fresh one-shot CDCL engine. Returns
/// the result, the search stats, the per-conflict backjump depths (for the
/// `solver.backjump_depth` histogram), and the learned-clause LBDs (for
/// `solver.clause_lbd`).
pub(crate) fn solve(
    f: &Formula,
    vars: &VarTable,
    decision_limit: u64,
    cancel: &CancelToken,
) -> (GroundResult, SearchStats, Vec<u64>, Vec<u64>) {
    let mut s = Cdcl::new(vars.clone(), decision_limit, cancel.clone());
    let root = s.lower(f);
    let result = s.search(&root);
    s.stats.theory_relaxations = s.th.relaxations;
    if matches!(result, GroundResult::Unknown) {
        s.stats.unknown_exits = 1;
    }
    let backjumps = std::mem::take(&mut s.backjumps);
    let lbds = std::mem::take(&mut s.lbds);
    (result, s.stats, backjumps, lbds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn lit_encoding_round_trips() {
        let l = lit(7, true);
        assert_eq!(lit_atom(l), 7);
        assert!(lit_value(l));
        assert_eq!(lit_atom(lit_neg(l)), 7);
        assert!(!lit_value(lit_neg(l)));
    }
}
