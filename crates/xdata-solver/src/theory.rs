//! Incremental integer difference-logic theory.
//!
//! Every atom the X-Data constraint generators emit normalizes to
//! `x − y ⋈ k` (see [`crate::atom::Atom::to_diff`]); over the integers these
//! become difference bounds:
//!
//! ```text
//! x − y ≤ k            (Le)
//! x − y ≤ k − 1        (Lt)
//! y − x ≤ −k           (Ge)
//! y − x ≤ −k − 1       (Gt)
//! both of Le and Ge    (Eq)
//! ```
//!
//! A conjunction of such bounds is satisfiable iff the corresponding
//! constraint graph has no negative cycle. The solver maintains a feasible
//! *potential function* incrementally (Cotton–Maler style): asserting an
//! edge relaxes potentials along outgoing edges; if relaxation would lower
//! the potential of the new edge's source, a negative cycle through the new
//! edge exists and the assertion fails. All mutations are recorded on a
//! trail so the search can backtrack cheaply.
//!
//! ## Conflict explanations
//!
//! Every edge carries an opaque *tag* (the CDCL search uses the atom index
//! of the literal that asserted it). During relaxation the theory tracks
//! parent pointers, so when a negative cycle is detected it can walk the
//! cycle and return the set of tags on its edges —
//! [`DiffLogic::assert_all_tagged`] surfaces this as `Err(tags)`. That tag
//! set is a *theory explanation*: the conjunction of exactly those literals
//! is already contradictory, which is what lets conflict analysis learn a
//! clause far smaller than the full assignment.
//!
//! One-variable bounds (`x ⋈ k`) use a designated *zero node*; extracted
//! models are shifted so the zero node's value is 0.

use std::collections::VecDeque;

use crate::atom::{Diff, RelOp};
use crate::ids::VarId;

/// An assertable theory literal: one or two difference edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    /// Constraint `x_v − x_u ≤ w`.
    pub u: u32,
    pub v: u32,
    pub w: i64,
}

/// Convert a canonical difference atom (with a given truth value) into the
/// difference bounds it asserts. `zero` is the zero-node id.
///
/// `Ne`-true and `Eq`-false are *not* single bounds (they are disjunctions);
/// the search handles them by branching, so this returns `None` for those.
pub fn bounds_for(diff: Diff, value: bool, zero: u32) -> Option<Vec<Bound>> {
    let (x, y, op, k) = match diff {
        Diff::TwoVar { x, y, op, k } => (x.0, y.0, op, k),
        Diff::OneVar { x, op, k } => (x.0, zero, op, k),
        Diff::Ground(_) => return Some(vec![]),
    };
    let op = if value { op } else { op.negate() };
    // Constraint: x − y op k.
    let bounds = match op {
        RelOp::Le => vec![Bound { u: y, v: x, w: k }],
        RelOp::Lt => vec![Bound { u: y, v: x, w: k - 1 }],
        RelOp::Ge => vec![Bound { u: x, v: y, w: -k }],
        RelOp::Gt => vec![Bound { u: x, v: y, w: -k - 1 }],
        RelOp::Eq => vec![Bound { u: y, v: x, w: k }, Bound { u: x, v: y, w: -k }],
        RelOp::Ne => return None,
    };
    Some(bounds)
}

/// Sort, deduplicate, and drop [`NO_TAG`] from an explanation tag set.
fn finish_tags(mut tags: Vec<u32>) -> Vec<u32> {
    tags.sort_unstable();
    tags.dedup();
    tags.retain(|&t| t != NO_TAG);
    tags
}

#[derive(Debug)]
enum TrailEntry {
    /// Potential of node changed from `old`.
    Pot { node: u32, old: i64 },
    /// An edge was appended to `adj[node]`.
    Edge { node: u32 },
}

/// Tag for edges asserted through the untagged [`DiffLogic::assert_bound`]
/// API; such edges are omitted from explanations.
pub const NO_TAG: u32 = u32::MAX;

/// Incremental difference-logic solver with push/pop levels.
#[derive(Debug)]
pub struct DiffLogic {
    /// Number of graph nodes (ground vars + 1 zero node).
    n: usize,
    /// Feasible potentials: for every edge `u → (v, w, _)`, `pot[v] ≤ pot[u] + w`.
    pot: Vec<i64>,
    /// Outgoing adjacency: `adj[u]` holds `(v, w, tag)` meaning
    /// `x_v − x_u ≤ w`, asserted by the literal identified by `tag`.
    adj: Vec<Vec<(u32, i64, u32)>>,
    trail: Vec<TrailEntry>,
    levels: Vec<usize>,
    /// Parent pointers for cycle extraction: `parent[y] = (x, tag)` means
    /// node `y`'s potential was last lowered via edge `x → y` with `tag`,
    /// during the relaxation identified by `visit_epoch[y] == epoch`.
    parent: Vec<(u32, u32)>,
    visit_epoch: Vec<u64>,
    epoch: u64,
    /// Statistics: total relaxations performed.
    pub relaxations: u64,
}

impl DiffLogic {
    /// Create a solver for `num_vars` ground variables (plus the implicit
    /// zero node).
    pub fn new(num_vars: u32) -> Self {
        let n = num_vars as usize + 1;
        DiffLogic {
            n,
            pot: vec![0; n],
            adj: vec![Vec::new(); n],
            trail: Vec::new(),
            levels: Vec::new(),
            parent: vec![(0, NO_TAG); n],
            visit_epoch: vec![0; n],
            epoch: 0,
            relaxations: 0,
        }
    }

    /// Node id of the zero variable.
    pub fn zero(&self) -> u32 {
        (self.n - 1) as u32
    }

    pub fn push_level(&mut self) {
        self.levels.push(self.trail.len());
    }

    /// Number of open push levels. The CDCL core keeps one theory level per
    /// trail entry; incremental sessions assert this 1:1 invariant when
    /// handing the core back at level 0 between targets.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    pub fn pop_level(&mut self) {
        let mark = self.levels.pop().expect("pop without matching push");
        self.undo_to(mark);
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("len checked") {
                TrailEntry::Pot { node, old } => self.pot[node as usize] = old,
                TrailEntry::Edge { node } => {
                    self.adj[node as usize].pop();
                }
            }
        }
    }

    /// Assert `x_v − x_u ≤ w`. Returns `false` (and leaves state unchanged)
    /// if this contradicts the current constraint set.
    pub fn assert_bound(&mut self, b: Bound) -> bool {
        self.assert_bound_tagged(b, NO_TAG).is_ok()
    }

    /// Assert `x_v − x_u ≤ w`, recording `tag` on the new edge. On
    /// contradiction the state is left unchanged and `Err` carries the
    /// sorted, deduplicated tags of the edges on a negative cycle through
    /// the new edge (including `tag` itself; [`NO_TAG`] edges are omitted).
    pub fn assert_bound_tagged(&mut self, b: Bound, tag: u32) -> Result<(), Vec<u32>> {
        let Bound { u, v, w } = b;
        if u == v {
            // A self-loop is a ground fact: `0 ≤ w`. Negative means the
            // literal alone is contradictory — the explanation is itself.
            return if w >= 0 { Ok(()) } else { Err(finish_tags(vec![tag])) };
        }
        let (u, v) = (u as usize, v as usize);
        if self.pot[v] <= self.pot[u] + w {
            // Already satisfied; just record the edge.
            self.adj[u].push((v as u32, w, tag));
            self.trail.push(TrailEntry::Edge { node: u as u32 });
            return Ok(());
        }
        // Tentatively relax. Record a local mark so a detected negative
        // cycle can roll back the partial relaxation immediately.
        let mark = self.trail.len();
        self.epoch += 1;
        self.trail.push(TrailEntry::Pot { node: v as u32, old: self.pot[v] });
        self.pot[v] = self.pot[u] + w;
        self.parent[v] = (u as u32, tag);
        self.visit_epoch[v] = self.epoch;
        let mut queue: VecDeque<u32> = VecDeque::new();
        queue.push_back(v as u32);
        while let Some(x) = queue.pop_front() {
            let px = self.pot[x as usize];
            // Iterate over a snapshot length: edges never change during
            // relaxation, only potentials.
            for i in 0..self.adj[x as usize].len() {
                let (y, wy, tagy) = self.adj[x as usize][i];
                let cand = px + wy;
                if cand < self.pot[y as usize] {
                    if y as usize == u {
                        // Lowering the new edge's source ⇒ negative cycle
                        // u → v ⇝ x → u. Walk the parent chain from x back
                        // to v collecting the tags on the cycle.
                        let tags = self.cycle_tags(x, v as u32, tag, tagy);
                        self.undo_to(mark);
                        return Err(tags);
                    }
                    self.relaxations += 1;
                    self.trail.push(TrailEntry::Pot { node: y, old: self.pot[y as usize] });
                    self.pot[y as usize] = cand;
                    self.parent[y as usize] = (x, tagy);
                    self.visit_epoch[y as usize] = self.epoch;
                    queue.push_back(y);
                }
            }
        }
        self.adj[u].push((v as u32, w, tag));
        self.trail.push(TrailEntry::Edge { node: u as u32 });
        Ok(())
    }

    /// Tags of the edges on the negative cycle `u → v ⇝ x → u`: the new
    /// edge's `tag`, the closing edge's `tag_close`, and the parent-chain
    /// tags from `x` back to `v`. If the parent chain loops before reaching
    /// `v` (queue-based relaxation can form parent cycles precisely when a
    /// negative cycle exists) the walk stops after `n` steps — the collected
    /// superset still contains a negative cycle, so it remains a sound
    /// explanation.
    fn cycle_tags(&self, x: u32, v: u32, tag: u32, tag_close: u32) -> Vec<u32> {
        let mut tags = vec![tag, tag_close];
        let mut cur = x;
        let mut steps = 0;
        while cur != v && steps <= self.n && self.visit_epoch[cur as usize] == self.epoch {
            let (p, t) = self.parent[cur as usize];
            tags.push(t);
            cur = p;
            steps += 1;
        }
        finish_tags(tags)
    }

    /// Assert all bounds of a literal; on failure the partial assertion is
    /// rolled back (caller still owns its push/pop level).
    pub fn assert_all(&mut self, bounds: &[Bound]) -> bool {
        self.assert_all_tagged(bounds, NO_TAG).is_ok()
    }

    /// [`DiffLogic::assert_all`] with a tag for every edge of the literal;
    /// on contradiction returns the explanation tags (see
    /// [`DiffLogic::assert_bound_tagged`]) with the partial assertion rolled
    /// back.
    pub fn assert_all_tagged(&mut self, bounds: &[Bound], tag: u32) -> Result<(), Vec<u32>> {
        let mark = self.trail.len();
        for b in bounds {
            if let Err(tags) = self.assert_bound_tagged(*b, tag) {
                self.undo_to(mark);
                return Err(tags);
            }
        }
        Ok(())
    }

    /// Extract a model: values for every ground variable, shifted so the
    /// zero node maps to 0. Valid while the current assertion set is
    /// consistent (which the potential invariant guarantees).
    pub fn model(&self) -> Vec<i64> {
        let z = self.pot[self.n - 1];
        self.pot[..self.n - 1].iter().map(|p| p - z).collect()
    }

    /// Value of one variable in the current model.
    pub fn value(&self, v: VarId) -> i64 {
        self.pot[v.0 as usize] - self.pot[self.n - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(u: u32, v: u32, w: i64) -> Bound {
        // x_v - x_u <= w
        Bound { u, v, w }
    }

    #[test]
    fn consistent_chain_has_model() {
        let mut t = DiffLogic::new(3);
        // x0 - x1 <= -1 (x0 < x1), x1 - x2 <= -1
        assert!(t.assert_bound(le(1, 0, -1)));
        assert!(t.assert_bound(le(2, 1, -1)));
        let m = t.model();
        assert!(m[0] < m[1] && m[1] < m[2], "{m:?}");
    }

    #[test]
    fn negative_cycle_detected() {
        let mut t = DiffLogic::new(2);
        assert!(t.assert_bound(le(1, 0, -1))); // x0 < x1
        assert!(!t.assert_bound(le(0, 1, -1))); // x1 < x0 — cycle
        // State unchanged: can still extract a model satisfying first bound.
        let m = t.model();
        assert!(m[0] < m[1]);
    }

    #[test]
    fn zero_cycle_of_equalities_ok() {
        let mut t = DiffLogic::new(2);
        // x0 = x1 via both directions.
        assert!(t.assert_bound(le(0, 1, 0)));
        assert!(t.assert_bound(le(1, 0, 0)));
        let m = t.model();
        assert_eq!(m[0], m[1]);
    }

    #[test]
    fn one_var_bounds_via_zero_node() {
        let mut t = DiffLogic::new(1);
        let z = t.zero();
        // x0 <= 5 and x0 >= 3
        assert!(t.assert_bound(Bound { u: z, v: 0, w: 5 }));
        assert!(t.assert_bound(Bound { u: 0, v: z, w: -3 }));
        let v = t.value(VarId(0));
        assert!((3..=5).contains(&v), "{v}");
        // x0 <= 2 now contradicts x0 >= 3.
        assert!(!t.assert_bound(Bound { u: z, v: 0, w: 2 }));
    }

    #[test]
    fn push_pop_restores_state() {
        let mut t = DiffLogic::new(2);
        assert!(t.assert_bound(le(1, 0, -5)));
        let before = t.model();
        t.push_level();
        // x1 - x0 <= 5 tightens the gap to exactly 5.
        assert!(t.assert_bound(le(0, 1, 5)));
        assert_eq!(t.model()[1] - t.model()[0], 5);
        t.pop_level();
        assert_eq!(t.model(), before);
        // The popped bound is really gone: a tighter-than-5 gap that would
        // have conflicted with it is now assertable.
        assert!(t.assert_bound(le(1, 0, -20)));
    }

    #[test]
    fn self_loop_bounds() {
        let mut t = DiffLogic::new(1);
        assert!(t.assert_bound(le(0, 0, 0)));
        assert!(!t.assert_bound(le(0, 0, -1)));
    }

    #[test]
    fn bounds_for_le_true() {
        let d = Diff::TwoVar { x: VarId(0), y: VarId(1), op: RelOp::Le, k: 3 };
        let b = bounds_for(d, true, 9).unwrap();
        assert_eq!(b, vec![Bound { u: 1, v: 0, w: 3 }]);
    }

    #[test]
    fn bounds_for_eq_false_is_none() {
        let d = Diff::TwoVar { x: VarId(0), y: VarId(1), op: RelOp::Eq, k: 0 };
        assert!(bounds_for(d, false, 9).is_none());
        assert_eq!(bounds_for(d, true, 9).unwrap().len(), 2);
    }

    #[test]
    fn bounds_for_strict_ops_tighten_by_one() {
        let d = Diff::OneVar { x: VarId(0), op: RelOp::Lt, k: 5 };
        let b = bounds_for(d, true, 7).unwrap();
        assert_eq!(b, vec![Bound { u: 7, v: 0, w: 4 }]);
        // x < 5 false ⇒ x >= 5 ⇒ zero - x <= -5
        let nb = bounds_for(d, false, 7).unwrap();
        assert_eq!(nb, vec![Bound { u: 0, v: 7, w: -5 }]);
    }

    #[test]
    fn explanation_names_the_cycle_edges() {
        let mut t = DiffLogic::new(4);
        // Tags 10..13 form a chain; tag 99 closes a negative cycle.
        assert!(t.assert_all_tagged(&[le(0, 1, 1)], 10).is_ok());
        assert!(t.assert_all_tagged(&[le(1, 2, 1)], 11).is_ok());
        assert!(t.assert_all_tagged(&[le(2, 3, 1)], 12).is_ok());
        // An irrelevant edge elsewhere must not appear in the explanation.
        let z = t.zero();
        assert!(t.assert_all_tagged(&[Bound { u: z, v: 0, w: 100 }], 50).is_ok());
        let err = t.assert_all_tagged(&[le(3, 0, -4)], 99).unwrap_err();
        assert_eq!(err, vec![10, 11, 12, 99]);
        // State rolled back: the zero-weight closure still fits.
        assert!(t.assert_bound(le(3, 0, -3)));
    }

    #[test]
    fn explanation_for_two_edge_cycle() {
        let mut t = DiffLogic::new(2);
        assert!(t.assert_all_tagged(&[le(1, 0, -1)], 7).is_ok());
        let err = t.assert_all_tagged(&[le(0, 1, -1)], 8).unwrap_err();
        assert_eq!(err, vec![7, 8]);
    }

    #[test]
    fn explanation_for_self_contradictory_literal() {
        let mut t = DiffLogic::new(1);
        let err = t.assert_all_tagged(&[le(0, 0, -1)], 3).unwrap_err();
        assert_eq!(err, vec![3]);
    }

    #[test]
    fn untagged_edges_are_omitted_from_explanations() {
        let mut t = DiffLogic::new(2);
        assert!(t.assert_bound(le(1, 0, -1)));
        let err = t.assert_all_tagged(&[le(0, 1, -1)], 4).unwrap_err();
        assert_eq!(err, vec![4]);
    }

    #[test]
    fn eq_literal_both_edges_share_one_tag() {
        let mut t = DiffLogic::new(2);
        // x0 = x1 under tag 5, then x0 < x1 under tag 6.
        assert!(t.assert_all_tagged(&[le(0, 1, 0), le(1, 0, 0)], 5).is_ok());
        let err = t.assert_all_tagged(&[le(1, 0, -1)], 6).unwrap_err();
        assert_eq!(err, vec![5, 6]);
    }

    #[test]
    fn long_inconsistent_cycle() {
        let mut t = DiffLogic::new(4);
        assert!(t.assert_bound(le(0, 1, 1)));
        assert!(t.assert_bound(le(1, 2, 1)));
        assert!(t.assert_bound(le(2, 3, 1)));
        // Close the cycle with total weight -1: x0 - x3 <= -4.
        assert!(!t.assert_bound(le(3, 0, -4)));
        // Weight exactly 0 around the cycle is fine.
        assert!(t.assert_bound(le(3, 0, -3)));
        let m = t.model();
        assert_eq!(m[3] - m[0], 3);
    }
}
