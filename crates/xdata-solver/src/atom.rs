//! Terms, relational operators and atoms of the constraint language.

use std::fmt;

use crate::ids::{ArrayId, QVarId, VarId, VarTable};

/// A comparison operator — the paper's mutation space for selection
/// predicates is exactly this set (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RelOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl RelOp {
    pub const ALL: [RelOp; 6] = [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge];

    /// The operator with operands swapped: `a op b  ⇔  b op.flip() a`.
    pub fn flip(self) -> RelOp {
        match self {
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
            RelOp::Lt => RelOp::Gt,
            RelOp::Le => RelOp::Ge,
            RelOp::Gt => RelOp::Lt,
            RelOp::Ge => RelOp::Le,
        }
    }

    /// The logical negation: `¬(a op b)  ⇔  a op.negate() b`.
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
        }
    }

    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            RelOp::Lt => a < b,
            RelOp::Le => a <= b,
            RelOp::Gt => a > b,
            RelOp::Ge => a >= b,
        }
    }

    pub fn sql_symbol(self) -> &'static str {
        match self {
            RelOp::Eq => "=",
            RelOp::Ne => "<>",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_symbol())
    }
}

/// Index into a tuple array: either a concrete slot or a quantified index
/// variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Index {
    Const(u32),
    Quant(QVarId),
}

/// A term: `array[index].field + offset`, or a constant.
///
/// Assumption A4/A5 restricts queries to simple arithmetic, and every
/// constraint the X-Data algorithms emit is expressible as attribute ±
/// constant (difference-logic form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    Field { array: ArrayId, index: Index, field: u32, offset: i64 },
    Const(i64),
}

impl Term {
    pub fn field(array: ArrayId, index: u32, field: u32) -> Term {
        Term::Field { array, index: Index::Const(index), field, offset: 0 }
    }

    pub fn qfield(array: ArrayId, qv: QVarId, field: u32) -> Term {
        Term::Field { array, index: Index::Quant(qv), field, offset: 0 }
    }

    /// `self + k`.
    pub fn plus(self, k: i64) -> Term {
        match self {
            Term::Field { array, index, field, offset } => {
                Term::Field { array, index, field, offset: offset + k }
            }
            Term::Const(c) => Term::Const(c + k),
        }
    }

    /// Whether the term contains no quantified index.
    pub fn is_ground(&self) -> bool {
        !matches!(self, Term::Field { index: Index::Quant(_), .. })
    }

    /// Substitute quantified variable `qv` with concrete slot `i`.
    pub fn subst(self, qv: QVarId, i: u32) -> Term {
        match self {
            Term::Field { array, index: Index::Quant(q), field, offset } if q == qv => {
                Term::Field { array, index: Index::Const(i), field, offset }
            }
            t => t,
        }
    }
}

/// An atomic constraint `lhs ⋈ rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    pub lhs: Term,
    pub op: RelOp,
    pub rhs: Term,
}

impl Atom {
    pub fn new(lhs: Term, op: RelOp, rhs: Term) -> Atom {
        Atom { lhs, op, rhs }
    }

    pub fn is_ground(&self) -> bool {
        self.lhs.is_ground() && self.rhs.is_ground()
    }

    pub fn subst(self, qv: QVarId, i: u32) -> Atom {
        Atom { lhs: self.lhs.subst(qv, i), op: self.op, rhs: self.rhs.subst(qv, i) }
    }

    /// Negated atom.
    pub fn negate(self) -> Atom {
        Atom { lhs: self.lhs, op: self.op.negate(), rhs: self.rhs }
    }

    /// Canonicalize a ground atom into difference form. Returns:
    ///
    /// * `Diff::TwoVar { x, y, op, k }` meaning `x - y  op  k`
    /// * `Diff::OneVar { x, op, k }` meaning `x  op  k`
    /// * `Diff::Ground(bool)` when both sides are constants.
    ///
    /// Panics if the atom is not ground (quantifiers must be eliminated or
    /// instantiated first).
    pub fn to_diff(&self, vars: &VarTable) -> Diff {
        let lhs = self.lhs;
        let rhs = self.rhs;
        match (lhs, rhs) {
            (Term::Const(a), Term::Const(b)) => Diff::Ground(self.op.eval(a, b)),
            (Term::Field { array, index, field, offset }, Term::Const(c)) => {
                let x = ground_var(vars, array, index, field);
                Diff::OneVar { x, op: self.op, k: c - offset }
            }
            (Term::Const(c), Term::Field { array, index, field, offset }) => {
                let x = ground_var(vars, array, index, field);
                // c op (x + offset)  ⇔  x op.flip() (c - offset)
                Diff::OneVar { x, op: self.op.flip(), k: c - offset }
            }
            (
                Term::Field { array: a1, index: i1, field: f1, offset: o1 },
                Term::Field { array: a2, index: i2, field: f2, offset: o2 },
            ) => {
                let x = ground_var(vars, a1, i1, f1);
                let y = ground_var(vars, a2, i2, f2);
                if x == y {
                    // (x + o1) op (x + o2) is ground.
                    return Diff::Ground(self.op.eval(o1, o2));
                }
                // (x + o1) op (y + o2)  ⇔  x - y  op  (o2 - o1)
                Diff::TwoVar { x, y, op: self.op, k: o2 - o1 }
            }
        }
    }
}

fn ground_var(vars: &VarTable, array: ArrayId, index: Index, field: u32) -> VarId {
    match index {
        Index::Const(i) => vars.var(array, i, field),
        Index::Quant(q) => panic!("atom with unbound quantified index {q} reached ground solver"),
    }
}

/// Canonical difference form of a ground atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diff {
    TwoVar { x: VarId, y: VarId, op: RelOp, k: i64 },
    OneVar { x: VarId, op: RelOp, k: i64 },
    Ground(bool),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn term(t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                Term::Const(c) => write!(f, "{c}"),
                Term::Field { array, index, field, offset } => {
                    match index {
                        Index::Const(i) => write!(f, "{array}[{i}].{field}")?,
                        Index::Quant(q) => write!(f, "{array}[{q}].{field}")?,
                    }
                    if *offset != 0 {
                        write!(f, "{:+}", offset)?;
                    }
                    Ok(())
                }
            }
        }
        term(&self.lhs, f)?;
        write!(f, " {} ", self.op)?;
        term(&self.rhs, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ArraySpec;

    fn vars() -> VarTable {
        VarTable::new(&[ArraySpec { name: "r".into(), len: 2, fields: 2 }])
    }

    #[test]
    fn relop_negate_is_involution() {
        for op in RelOp::ALL {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn relop_flip_consistent_with_eval() {
        for op in RelOp::ALL {
            for a in -2..=2 {
                for b in -2..=2 {
                    assert_eq!(op.eval(a, b), op.flip().eval(b, a), "{op} {a} {b}");
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn const_const_atom_folds() {
        let v = vars();
        let a = Atom::new(Term::Const(3), RelOp::Lt, Term::Const(5));
        assert_eq!(a.to_diff(&v), Diff::Ground(true));
    }

    #[test]
    fn const_on_left_flips() {
        let v = vars();
        // 5 < r[0].1  ⇔  r[0].1 > 5
        let a = Atom::new(Term::Const(5), RelOp::Lt, Term::field(ArrayId(0), 0, 1));
        match a.to_diff(&v) {
            Diff::OneVar { op, k, .. } => {
                assert_eq!(op, RelOp::Gt);
                assert_eq!(k, 5);
            }
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn offsets_fold_into_constant() {
        let v = vars();
        // (r[0].0 + 3) <= (r[1].0 + 10)  ⇔  x - y <= 7
        let a = Atom::new(
            Term::field(ArrayId(0), 0, 0).plus(3),
            RelOp::Le,
            Term::field(ArrayId(0), 1, 0).plus(10),
        );
        match a.to_diff(&v) {
            Diff::TwoVar { op, k, .. } => {
                assert_eq!(op, RelOp::Le);
                assert_eq!(k, 7);
            }
            d => panic!("unexpected {d:?}"),
        }
    }

    #[test]
    fn same_var_both_sides_folds() {
        let v = vars();
        let t = Term::field(ArrayId(0), 0, 0);
        let a = Atom::new(t, RelOp::Lt, t.plus(1));
        assert_eq!(a.to_diff(&v), Diff::Ground(true));
        let b = Atom::new(t, RelOp::Eq, t.plus(1));
        assert_eq!(b.to_diff(&v), Diff::Ground(false));
    }

    #[test]
    fn subst_replaces_only_matching_qvar() {
        let q = QVarId(0);
        let t = Term::qfield(ArrayId(0), q, 1);
        assert!(!t.is_ground());
        let g = t.subst(q, 1);
        assert!(g.is_ground());
        let other = t.subst(QVarId(1), 0);
        assert!(!other.is_ground());
    }

    #[test]
    fn display_is_readable() {
        let a = Atom::new(
            Term::field(ArrayId(0), 0, 1).plus(10),
            RelOp::Eq,
            Term::Const(42),
        );
        assert_eq!(a.to_string(), "A0[0].1+10 = 42");
    }
}
