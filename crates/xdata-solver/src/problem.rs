//! Public solver API: declare tuple arrays, assert constraints, solve.
//!
//! This mirrors how X-Data drives CVC3 (§V-A): declare one array of
//! constraint tuples per base relation, assert constraints over the tuple
//! attributes, ask for a model, and read the dataset out of the model. The
//! two [`Mode`]s correspond to the paper's "without unfolding" and "with
//! unfolding" configurations (§VI-B).

use std::collections::HashSet;

use xdata_par::CancelToken;

use crate::eval::{eval, forall_violation};
use crate::formula::Formula;
use crate::ids::{ArrayId, ArraySpec, QVarId, VarTable};
use crate::nnf::to_nnf;
use crate::search::{solve_ground_cancel, GroundResult, SearchCore};
use crate::unfold::unfold;

/// Quantifier-handling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Expand all bounded quantifiers up-front (§VI-B). Fast.
    Unfold,
    /// Keep quantifiers symbolic; solve the ground part, then check and
    /// instantiate violated quantifier instances, re-solving until a model
    /// satisfies everything (model-based quantifier instantiation). This is
    /// the paper's "without unfolding" configuration and is measurably
    /// slower because it repeatedly pays the ground-solving cost.
    Lazy,
}

/// A satisfying assignment.
#[derive(Debug, Clone)]
pub struct Model {
    values: Vec<i64>,
    vars: VarTable,
}

impl Model {
    /// Construct a model from raw `VarId`-indexed values. Used by callers
    /// that rebuild a model from externally stored values (e.g. the solve
    /// memo in `xdata-core`, which replays a cached assignment against an
    /// isomorphic problem).
    pub fn from_values(values: Vec<i64>, vars: VarTable) -> Model {
        Model { values, vars }
    }

    /// Value of `array[index].field`.
    pub fn get(&self, array: ArrayId, index: u32, field: u32) -> i64 {
        self.values[self.vars.var(array, index, field).0 as usize]
    }

    /// Raw `VarId`-indexed values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

/// Outcome of [`Problem::solve`].
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    Sat(Model),
    /// The constraints are inconsistent. In X-Data this is meaningful, not
    /// an error: "such cases arise only when the targeted class of mutants
    /// is actually equivalent to the given query" (§V-A).
    Unsat,
    /// Resource limit hit (never observed on the paper's workloads).
    Unknown,
    /// The caller's [`CancelToken`] tripped — a wall-clock deadline expired
    /// or cancellation was requested — before a verdict. Distinct from
    /// [`SolveOutcome::Unknown`]: the *search* did not give up, the caller
    /// withdrew its time budget, so the result says nothing about
    /// satisfiability and must not be cached as a verdict.
    Cancelled,
}

impl SolveOutcome {
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveOutcome::Sat(_))
    }
}

/// Map a ground-search result into the public outcome, wrapping a model
/// around SAT values. Shared by the one-shot unfold path and the
/// incremental session (`crate::session`), so both produce identically
/// shaped outcomes.
pub(crate) fn outcome_from_ground(res: GroundResult, vars: &VarTable) -> SolveOutcome {
    match res {
        GroundResult::Sat(values) => SolveOutcome::Sat(Model { values, vars: vars.clone() }),
        GroundResult::Unsat => SolveOutcome::Unsat,
        GroundResult::Unknown => SolveOutcome::Unknown,
        GroundResult::Cancelled => SolveOutcome::Cancelled,
    }
}

/// Counters for one solve call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    pub decisions: u64,
    pub conflicts: u64,
    pub theory_relaxations: u64,
    /// Unit propagations (forced decisions) across all ground solves.
    pub propagations: u64,
    /// Ground solves that exhausted their decision budget and returned
    /// `Unknown`.
    pub unknown_exits: u64,
    /// Clauses learned by CDCL conflict analysis (0 under the DPLL core).
    pub learned_clauses: u64,
    /// CDCL restarts (0 under the DPLL core).
    pub restarts: u64,
    /// Cooperative cancellation checks in the hot loops.
    pub cancel_checks: u64,
    /// Ground sub-solves (1 in `Unfold` mode, ≥1 in `Lazy`).
    pub ground_solves: u64,
    /// Quantifier instances added by lazy instantiation.
    pub instantiations: u64,
    /// Atom count of the final ground formula.
    pub ground_atoms: usize,
}

/// A constraint problem under construction.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    specs: Vec<ArraySpec>,
    constraints: Vec<Formula>,
    next_qvar: u32,
}

impl Problem {
    pub fn new() -> Self {
        Problem::default()
    }

    /// Declare a tuple array with `len` slots of `fields` attributes.
    pub fn add_array(&mut self, name: impl Into<String>, len: u32, fields: u32) -> ArrayId {
        self.specs.push(ArraySpec { name: name.into(), len, fields });
        ArrayId(self.specs.len() as u32 - 1)
    }

    /// A globally fresh quantified index variable.
    pub fn fresh_qvar(&mut self) -> QVarId {
        let q = QVarId(self.next_qvar);
        self.next_qvar += 1;
        q
    }

    /// Assert a constraint.
    pub fn assert(&mut self, f: Formula) {
        self.constraints.push(f);
    }

    /// Eagerly expand every bounded quantifier asserted so far into its
    /// ground normal form, in place. Subsequent [`Problem::solve`] calls in
    /// [`Mode::Unfold`] then skip re-expanding these constraints — the
    /// point of pre-building a shared constraint skeleton that many solve
    /// targets clone: the PK/FK/domain closure is unfolded **once** instead
    /// of once per target per repair-ladder rung.
    ///
    /// Semantics are unchanged (unfolding is an equivalence for bounded
    /// quantifiers), but [`Mode::Lazy`] solves after this call no longer
    /// exercise lazy instantiation for the inlined constraints, so callers
    /// benchmarking the §VI-B ablation must not pre-inline.
    pub fn inline_quantifiers(&mut self) {
        let vars = self.var_table();
        for c in &mut self.constraints {
            if c.has_quantifier() {
                *c = unfold(&to_nnf(c), &vars);
            }
        }
    }

    pub fn constraints(&self) -> &[Formula] {
        &self.constraints
    }

    pub fn var_table(&self) -> VarTable {
        VarTable::new(&self.specs)
    }

    pub fn specs(&self) -> &[ArraySpec] {
        &self.specs
    }

    /// Solve the asserted constraints.
    pub fn solve(&self, mode: Mode) -> (SolveOutcome, SolverStats) {
        self.solve_with_limit(mode, crate::search::DEFAULT_DECISION_LIMIT)
    }

    /// [`Problem::solve`] with an explicit decision budget; exceeding it
    /// yields [`SolveOutcome::Unknown`] instead of running on.
    pub fn solve_with_limit(&self, mode: Mode, limit: u64) -> (SolveOutcome, SolverStats) {
        self.solve_with(mode, limit, SearchCore::default())
    }

    /// Fully explicit solve: quantifier mode, decision budget, and ground
    /// search core ([`SearchCore::Cdcl`] or the baseline
    /// [`SearchCore::Dpll`]).
    pub fn solve_with(
        &self,
        mode: Mode,
        limit: u64,
        core: SearchCore,
    ) -> (SolveOutcome, SolverStats) {
        self.solve_cancel(mode, limit, core, &CancelToken::new())
    }

    /// [`Problem::solve_with`] under a [`CancelToken`]: both quantifier
    /// modes run their ground solves with cooperative cancellation, and the
    /// lazy instantiation loop additionally checks the token between
    /// rounds. A tripped token yields [`SolveOutcome::Cancelled`].
    pub fn solve_cancel(
        &self,
        mode: Mode,
        limit: u64,
        core: SearchCore,
        cancel: &CancelToken,
    ) -> (SolveOutcome, SolverStats) {
        let vars = self.var_table();
        match mode {
            Mode::Unfold => self.solve_unfold(&vars, limit, core, cancel),
            Mode::Lazy => self.solve_lazy(&vars, limit, core, cancel),
        }
    }

    /// Convenience: solve and verify the model against the original
    /// constraints (panics on solver bugs; used by tests).
    pub fn solve_checked(&self, mode: Mode) -> (SolveOutcome, SolverStats) {
        let (out, stats) = self.solve(mode);
        if let SolveOutcome::Sat(m) = &out {
            let vars = self.var_table();
            for c in &self.constraints {
                assert!(eval(c, m.values(), &vars), "model violates constraint {c}");
            }
        }
        (out, stats)
    }

    fn solve_unfold(
        &self,
        vars: &VarTable,
        limit: u64,
        core: SearchCore,
        cancel: &CancelToken,
    ) -> (SolveOutcome, SolverStats) {
        let nf = Formula::and(self.constraints.iter().map(to_nnf));
        let ground = unfold(&nf, vars);
        let mut stats = SolverStats { ground_solves: 1, ground_atoms: ground.atom_count(), ..SolverStats::default() };
        xdata_obs::counter("solver.ground_solves", 1);
        xdata_obs::observe("solver.ground_atoms", stats.ground_atoms as u64);
        let (res, s) =
            solve_ground_cancel(&ground, vars, limit.saturating_sub(stats.decisions), core, cancel);
        stats.decisions = s.decisions;
        stats.conflicts = s.conflicts;
        stats.theory_relaxations = s.theory_relaxations;
        stats.propagations = s.propagations;
        stats.unknown_exits = s.unknown_exits;
        stats.learned_clauses = s.learned_clauses;
        stats.restarts = s.restarts;
        stats.cancel_checks = s.cancel_checks;
        (outcome_from_ground(res, vars), stats)
    }

    fn solve_lazy(
        &self,
        vars: &VarTable,
        limit: u64,
        core: SearchCore,
        cancel: &CancelToken,
    ) -> (SolveOutcome, SolverStats) {
        let mut stats = SolverStats::default();
        let mut working: Vec<Formula> = Vec::new();
        // Pending quantified constraints with their instantiation history.
        struct Pending {
            formula: Formula,
            instantiated: HashSet<u32>,
            absorbed: bool,
        }
        let mut pending: Vec<Pending> = Vec::new();
        for c in &self.constraints {
            let nf = to_nnf(c);
            if nf.has_quantifier() {
                pending.push(Pending { formula: nf, instantiated: HashSet::new(), absorbed: false });
            } else {
                working.push(nf);
            }
        }
        loop {
            // The per-round check catches cancellation during the (possibly
            // large) unfold/instantiation work between ground solves.
            if cancel.is_cancelled() {
                return (SolveOutcome::Cancelled, stats);
            }
            stats.ground_solves += 1;
            let ground = Formula::and(working.iter().cloned());
            stats.ground_atoms = ground.atom_count();
            xdata_obs::counter("solver.ground_solves", 1);
            xdata_obs::observe("solver.ground_atoms", stats.ground_atoms as u64);
            let (res, s) =
                solve_ground_cancel(&ground, vars, limit.saturating_sub(stats.decisions), core, cancel);
            stats.decisions += s.decisions;
            stats.conflicts += s.conflicts;
            stats.theory_relaxations += s.theory_relaxations;
            stats.propagations += s.propagations;
            stats.unknown_exits += s.unknown_exits;
            stats.learned_clauses += s.learned_clauses;
            stats.restarts += s.restarts;
            stats.cancel_checks += s.cancel_checks;
            let model = match res {
                GroundResult::Unsat => return (SolveOutcome::Unsat, stats),
                GroundResult::Unknown => return (SolveOutcome::Unknown, stats),
                GroundResult::Cancelled => return (SolveOutcome::Cancelled, stats),
                GroundResult::Sat(m) => m,
            };
            // One instantiation per round, as incremental quantifier
            // reasoning in CVC3-era solvers did: find the first violated
            // quantified constraint, add one instance, re-solve. This is
            // what makes the "without unfolding" configuration pay a
            // ground-solve per instance (§VI-B's observed slowdown).
            let mut progressed = false;
            let round_inst_start = stats.instantiations;
            let mut additions: Vec<Formula> = Vec::new();
            let mut new_pending: Vec<Formula> = Vec::new();
            for p in pending.iter_mut().filter(|p| !p.absorbed) {
                if progressed {
                    break;
                }
                if eval(&p.formula, &model, vars) {
                    continue;
                }
                progressed = true;
                match &p.formula {
                    Formula::Forall { qv, array, body } => {
                        // Instantiate exactly the violated slice.
                        if let Some(i) = forall_violation(*qv, *array, body, &model, vars) {
                            if p.instantiated.insert(i) {
                                stats.instantiations += 1;
                                let inst = body.subst(*qv, i);
                                if inst.has_quantifier() {
                                    new_pending.push(inst);
                                } else {
                                    additions.push(inst);
                                }
                            } else {
                                // Slice already instantiated but still
                                // violated via nested structure: absorb
                                // fully to guarantee progress.
                                stats.instantiations += 1;
                                additions.push(unfold(&p.formula, vars));
                                p.absorbed = true;
                            }
                        }
                    }
                    other => {
                        // Exists at top level, or quantifier nested under
                        // boolean structure: absorb the whole constraint.
                        stats.instantiations += 1;
                        additions.push(unfold(other, vars));
                        p.absorbed = true;
                    }
                }
            }
            if !progressed {
                return (SolveOutcome::Sat(Model { values: model, vars: vars.clone() }), stats);
            }
            xdata_obs::counter("solver.instantiations", stats.instantiations - round_inst_start);
            working.extend(additions);
            pending.extend(new_pending.into_iter().map(|f| Pending {
                formula: f,
                instantiated: HashSet::new(),
                absorbed: false,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{RelOp, Term};

    /// A miniature of the paper's running example: instructor ⋈ teaches
    /// with an FK from teaches.id to instructor.id, and a NOT EXISTS
    /// nullification constraint.
    fn fk_problem(nullify_instructor: bool) -> Problem {
        let mut p = Problem::new();
        let inst = p.add_array("instructor", 2, 2); // (id, dept)
        let teach = p.add_array("teaches", 1, 2); // (id, cid)
        // Foreign key: ∀i∈teaches ∃j∈instructor teaches[i].id = instructor[j].id
        let qi = p.fresh_qvar();
        let qj = p.fresh_qvar();
        p.assert(Formula::forall(
            qi,
            teach,
            Formula::exists(
                qj,
                inst,
                Formula::atom(
                    Term::qfield(teach, qi, 0),
                    RelOp::Eq,
                    Term::qfield(inst, qj, 0),
                ),
            ),
        ));
        // Domain-ish bounds keep values small.
        for (arr, len, fields) in [(inst, 2u32, 2u32), (teach, 1, 2)] {
            for i in 0..len {
                for f in 0..fields {
                    p.assert(Formula::atom(Term::field(arr, i, f), RelOp::Ge, Term::Const(0)));
                    p.assert(Formula::atom(Term::field(arr, i, f), RelOp::Le, Term::Const(100)));
                }
            }
        }
        if nullify_instructor {
            // NOT EXISTS j: instructor[j].id = teaches[0].id — directly
            // contradicts the FK: the "equivalent mutant" signal.
            let q = p.fresh_qvar();
            p.assert(Formula::not_exists(
                q,
                inst,
                Formula::atom(Term::qfield(inst, q, 0), RelOp::Eq, Term::field(teach, 0, 0)),
            ));
        }
        p
    }

    #[test]
    fn fk_satisfiable_both_modes() {
        for mode in [Mode::Unfold, Mode::Lazy] {
            let p = fk_problem(false);
            let (out, stats) = p.solve_checked(mode);
            assert!(out.is_sat(), "mode {mode:?}");
            if mode == Mode::Unfold {
                assert_eq!(stats.ground_solves, 1);
            }
        }
    }

    #[test]
    fn fk_with_nullification_unsat_both_modes() {
        for mode in [Mode::Unfold, Mode::Lazy] {
            let p = fk_problem(true);
            let (out, _) = p.solve(mode);
            assert!(matches!(out, SolveOutcome::Unsat), "mode {mode:?}");
        }
    }

    #[test]
    fn model_get_reads_by_coordinates() {
        let mut p = Problem::new();
        let a = p.add_array("r", 1, 2);
        p.assert(Formula::atom(Term::field(a, 0, 1), RelOp::Eq, Term::Const(42)));
        let (out, _) = p.solve(Mode::Unfold);
        match out {
            SolveOutcome::Sat(m) => assert_eq!(m.get(a, 0, 1), 42),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn lazy_mode_instantiates_on_demand() {
        let p = fk_problem(false);
        let (out, stats) = p.solve(Mode::Lazy);
        assert!(out.is_sat());
        // Either the first ground model satisfied the FK by luck, or
        // instantiation happened; both are legal, but ground_solves ≥ 1.
        assert!(stats.ground_solves >= 1);
    }

    #[test]
    fn unsat_core_behaviour_same_across_modes() {
        // x < 0 ∧ (∀i : r[i].0 ≥ 0) over r of len 1 — lazy must catch the
        // quantified violation.
        let mut p = Problem::new();
        let r = p.add_array("r", 1, 1);
        let q = p.fresh_qvar();
        p.assert(Formula::forall(
            q,
            r,
            Formula::atom(Term::qfield(r, q, 0), RelOp::Ge, Term::Const(0)),
        ));
        p.assert(Formula::atom(Term::field(r, 0, 0), RelOp::Lt, Term::Const(0)));
        for mode in [Mode::Unfold, Mode::Lazy] {
            let (out, _) = p.solve(mode);
            assert!(matches!(out, SolveOutcome::Unsat), "mode {mode:?}");
        }
    }

    #[test]
    fn empty_problem_is_sat() {
        let p = Problem::new();
        let (out, _) = p.solve(Mode::Unfold);
        assert!(out.is_sat());
    }

    #[test]
    fn inline_quantifiers_preserves_verdict_and_model() {
        for nullify in [false, true] {
            let p = fk_problem(nullify);
            let mut q = p.clone();
            q.inline_quantifiers();
            assert!(!q.constraints().iter().any(|c| c.has_quantifier()));
            let (a, _) = p.solve(Mode::Unfold);
            let (b, _) = q.solve(Mode::Unfold);
            assert_eq!(a.is_sat(), b.is_sat(), "nullify={nullify}");
            // The ground search sees the same unfolded structure, so the
            // model (when SAT) is identical too.
            if let (SolveOutcome::Sat(ma), SolveOutcome::Sat(mb)) = (a, b) {
                assert_eq!(ma.values(), mb.values());
            }
        }
    }

    #[test]
    fn inline_then_assert_more_still_solves() {
        let mut p = fk_problem(false);
        p.inline_quantifiers();
        // A post-inline quantified assertion must still be handled.
        let q = p.fresh_qvar();
        let inst = ArrayId(0);
        p.assert(Formula::not_exists(
            q,
            inst,
            Formula::atom(Term::qfield(inst, q, 0), RelOp::Eq, Term::field(ArrayId(1), 0, 0)),
        ));
        let (out, _) = p.solve(Mode::Unfold);
        assert!(matches!(out, SolveOutcome::Unsat));
    }
}
