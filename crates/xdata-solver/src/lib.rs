//! # xdata-solver
//!
//! A from-scratch constraint solver playing the role CVC3 plays in the
//! X-Data paper (*Generating Test Data for Killing SQL Mutants*, Shah et
//! al.): given constraints over the attributes of tuples-to-be-generated,
//! produce a model (an assignment of values) or report that the constraints
//! are inconsistent — which, in X-Data, signals an *equivalent mutant*.
//!
//! ## Constraint language
//!
//! Exactly what X-Data's constraint generation emits (§V):
//!
//! * **Tuple arrays** — each base relation maps to an array of constraint
//!   tuples; each attribute of each tuple is an integer variable
//!   ([`Problem::add_array`]). String attributes are integer-coded by the
//!   caller (see `xdata-catalog::DomainCatalog`).
//! * **Atoms** — `term ⋈ term` where `⋈ ∈ {=, ≠, <, ≤, >, ≥}` and terms are
//!   `attribute + constant` or constants: integer difference logic, which
//!   covers equi-joins, selections against constants, and non-equi joins
//!   like `B.x = C.x + 10` (§V-D).
//! * **Boolean structure** — `AND`, `OR`, `NOT`.
//! * **Bounded quantifiers** — `FORALL`/`EXISTS` over the indices of a tuple
//!   array, used for foreign keys (`∀i ∃j R[i].fk = S[j].pk`), primary-key
//!   functional dependencies, and the `NOT EXISTS` constraints that nullify
//!   a relation on a join condition.
//!
//! ## Solving modes (§VI-B)
//!
//! * [`Mode::Unfold`] — bounded quantifiers are expanded into finite
//!   conjunctions/disjunctions up-front, then a search over the ground
//!   formula with an integer-difference-logic theory (negative-cycle
//!   detection) decides satisfiability. This is the paper's "with
//!   unfolding" configuration.
//!
//! ## Ground search cores
//!
//! Two interchangeable engines decide the ground formula (selected by
//! [`SearchCore`], default [`SearchCore::Cdcl`]):
//!
//! * **CDCL-lite** (`cdcl` module) — conflict-driven clause learning with
//!   1-UIP learned clauses, non-chronological backjumping, theory conflicts
//!   explained by the difference-logic negative cycle, VSIDS-style activity
//!   ordering (deterministically tie-broken) and Luby restarts that keep
//!   learned clauses.
//! * **DPLL** ([`search`] module) — the original chronological
//!   backtracking core, kept as a baseline and differential-testing oracle.
//! * [`Mode::Lazy`] — quantifiers stay symbolic; the solver finds a model of
//!   the ground part, checks the quantified constraints against it, and on
//!   violation instantiates just the violated instance and re-solves
//!   (model-based quantifier instantiation). This is the "without
//!   unfolding" configuration: complete for bounded quantifiers, but
//!   repeatedly pays the ground-solving cost, reproducing the paper's
//!   observed slowdown.
//!
//! Both modes are sound and complete for this language, so `Unsat` really
//! means "no such dataset exists" — the completeness guarantee of §V-G
//! rests on this.
//!
//! ## Incremental sessions
//!
//! X-Data solves families of near-identical problems: dozens of targets
//! per query share one constraint skeleton and differ only in small
//! deltas. [`SolveSession`] lowers the skeleton once and solves each
//! target under assumptions (selector-guarded deltas), retaining learned
//! clauses, branching activities, and saved phases across targets — see
//! the [`session`] module docs for the encoding and its soundness
//! argument.
//!
//! ## Cancellation
//!
//! Every solve entry point has a `_cancel` variant threading an
//! [`xdata_par::CancelToken`] into the hot loops: both cores check the
//! token every [`search::CANCEL_CHECK_INTERVAL`] steps and exit with
//! `Cancelled` once it trips (wall-clock deadline or explicit request).
//! `Cancelled` is *not* a verdict — it says the caller withdrew its time
//! budget, so it must never be cached or treated as `Unsat`.

pub mod atom;
mod cdcl;
pub mod eval;
pub mod formula;
pub mod ids;
pub mod nnf;
pub mod problem;
pub mod search;
pub mod session;
pub mod strings;
pub mod theory;
pub mod unfold;

pub use atom::{Atom, RelOp, Term};
pub use formula::Formula;
pub use ids::{ArrayId, ArraySpec, QVarId, VarId, VarTable};
pub use problem::{Mode, Model, Problem, SolveOutcome, SolverStats};
pub use search::{SearchCore, CANCEL_CHECK_INTERVAL, DEFAULT_DECISION_LIMIT};
pub use session::SolveSession;
pub use strings::{membership_formula, LikePattern};
pub use xdata_par::CancelToken;
