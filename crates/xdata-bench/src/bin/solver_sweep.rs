//! CDCL vs DPLL ground-core comparison over the Table I workload.
//!
//! Runs suite generation for each Table I chain query (2..=6 relations,
//! all relevant FKs) plus a selection-augmented chain under both search
//! cores, records per-core wall time, the `generate/solve` span total and
//! the solver counters (learned clauses, restarts, backjumps, solve-memo
//! hits), verifies the two cores agree on every verdict, and writes
//! `results/BENCH_solver.json`.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin solver_sweep
//! ```

use xdata_bench::{chain_schema, chain_sql, median_time, relevant_fk_count};
use xdata_catalog::DomainCatalog;
use xdata_core::{generate, GenOptions};
use xdata_relalg::normalize;
use xdata_solver::SearchCore;
use xdata_sql::parse_query;

const CORES: [SearchCore; 2] = [SearchCore::Dpll, SearchCore::Cdcl];

/// Everything measured for one (query, core) cell.
#[derive(Default, Clone)]
struct Cell {
    gen_ms: f64,
    solve_span_ms: f64,
    decisions: u64,
    conflicts: u64,
    propagations: u64,
    learned_clauses: u64,
    restarts: u64,
    backjumped_levels: u64,
    memo_hit: u64,
    memo_miss: u64,
    unknown_exits: u64,
}

struct Row {
    name: String,
    datasets: usize,
    skipped: usize,
    cells: [Cell; CORES.len()],
}

fn core_name(c: SearchCore) -> &'static str {
    match c {
        SearchCore::Dpll => "dpll",
        SearchCore::Cdcl => "cdcl",
    }
}

fn main() {
    let max_rels: usize = std::env::var("XDATA_MAX_RELS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);

    // Table I chains plus one selection-augmented chain: the added
    // constant comparison brings comparison-operator targets (and with
    // them the `=`/`<`/`>` datasets whose `>` case exercises the solve
    // memo against the original-query target).
    let mut workloads: Vec<(String, String, xdata_catalog::Schema)> = Vec::new();
    for k in 2..=max_rels {
        let fks = relevant_fk_count(k);
        workloads.push((
            format!("chain-{}join-{}fk", k - 1, fks),
            chain_sql(k),
            chain_schema(k, fks),
        ));
    }
    {
        let k = 3;
        let fks = relevant_fk_count(k);
        let sql = chain_sql(k).replace(
            "WHERE",
            "WHERE instructor.salary > 50000 AND",
        );
        workloads.push((format!("chain-{}join-sel", k - 1), sql, chain_schema(k, fks)));
    }

    println!("solver core sweep (DPLL baseline vs CDCL) over {} workloads", workloads.len());
    println!(
        "{:>18} {:>5} | {:>10} {:>10} | {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8}",
        "query", "core", "gen ms", "solve ms", "decisions", "conflicts", "learned", "restarts",
        "memo.hit", "unknown",
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, sql, schema) in &workloads {
        let q = normalize(&parse_query(sql).unwrap(), schema).unwrap();
        let domains = DomainCatalog::defaults(schema);

        let mut cells: [Cell; CORES.len()] = Default::default();
        let mut shapes: Vec<(usize, usize, Vec<String>)> = Vec::new();
        for (ci, &core) in CORES.iter().enumerate() {
            let opts = GenOptions { core, ..GenOptions::default() };

            // Counter + span pass: one instrumented run.
            xdata_obs::install();
            xdata_obs::preseed();
            let suite = generate(&q, schema, &domains, &opts).expect("generation succeeds");
            let report = xdata_obs::take_report().expect("recorder installed");

            let mut cell = Cell {
                solve_span_ms: report.spans["generate/solve"].total_ns as f64 / 1e6,
                decisions: report.counter("solver.decisions"),
                conflicts: report.counter("solver.conflicts"),
                propagations: report.counter("solver.propagations"),
                learned_clauses: report.counter("solver.learned_clauses"),
                restarts: report.counter("solver.restarts"),
                backjumped_levels: report
                    .histograms
                    .get("solver.backjump_depth")
                    .map(|h| h.sum)
                    .unwrap_or(0),
                memo_hit: report.counter("core.solve_memo.hit"),
                memo_miss: report.counter("core.solve_memo.miss"),
                unknown_exits: report.counter("solver.unknown_exits"),
                ..Cell::default()
            };

            // Timing pass, uninstrumented.
            cell.gen_ms = median_time(1, 3, || {
                generate(&q, schema, &domains, &opts).unwrap();
            })
            .as_secs_f64()
                * 1e3;

            shapes.push((
                suite.datasets.len(),
                suite.skipped.len(),
                suite.datasets.iter().map(|d| d.label.clone()).collect(),
            ));
            println!(
                "{:>18} {:>5} | {:>10.1} {:>10.1} | {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8}",
                name,
                core_name(core),
                cell.gen_ms,
                cell.solve_span_ms,
                cell.decisions,
                cell.conflicts,
                cell.learned_clauses,
                cell.restarts,
                cell.memo_hit,
                cell.unknown_exits,
            );
            cells[ci] = cell;
        }

        // Verdict parity: both cores must produce the same suite shape —
        // same dataset labels, same skip count. (Models may legitimately
        // differ; validity is covered by the generator's own checks.)
        assert_eq!(shapes[0].0, shapes[1].0, "{name}: dataset count differs across cores");
        assert_eq!(shapes[0].1, shapes[1].1, "{name}: skip count differs across cores");
        assert_eq!(shapes[0].2, shapes[1].2, "{name}: dataset labels differ across cores");

        rows.push(Row { name: name.clone(), datasets: shapes[1].0, skipped: shapes[1].1, cells });
    }

    let total = |ci: usize, f: &dyn Fn(&Cell) -> f64| -> f64 {
        rows.iter().map(|r| f(&r.cells[ci])).sum()
    };
    let dpll_solve = total(0, &|c| c.solve_span_ms);
    let cdcl_solve = total(1, &|c| c.solve_span_ms);
    println!(
        "\ntotal solve-span: dpll {dpll_solve:.1} ms, cdcl {cdcl_solve:.1} ms ({:.2}x)",
        dpll_solve / cdcl_solve.max(1e-9)
    );

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"Table I chain queries (all relevant FKs) + selection-augmented chain\",\n");
    json.push_str(&format!(
        "  \"cores\": [{}],\n",
        CORES.map(|c| format!("\"{}\"", core_name(c))).join(", ")
    ));
    json.push_str(&format!(
        "  \"total_solve_span_ms\": {{\"dpll\": {dpll_solve:.3}, \"cdcl\": {cdcl_solve:.3}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"datasets\": {}, \"skipped\": {},\n",
            r.name, r.datasets, r.skipped
        ));
        for (ci, &core) in CORES.iter().enumerate() {
            let c = &r.cells[ci];
            json.push_str(&format!(
                "     \"{}\": {{\"generate_ms\": {:.3}, \"solve_span_ms\": {:.3}, \
                 \"decisions\": {}, \"conflicts\": {}, \"propagations\": {}, \
                 \"learned_clauses\": {}, \"restarts\": {}, \"backjumped_levels\": {}, \
                 \"memo_hit\": {}, \"memo_miss\": {}, \"unknown_exits\": {}}}{}\n",
                core_name(core),
                c.gen_ms,
                c.solve_span_ms,
                c.decisions,
                c.conflicts,
                c.propagations,
                c.learned_clauses,
                c.restarts,
                c.backjumped_levels,
                c.memo_hit,
                c.memo_miss,
                c.unknown_exits,
                if ci + 1 == CORES.len() { "}" } else { "," },
            ));
        }
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new("results/BENCH_solver.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(out, &json).expect("write BENCH_solver.json");
    println!("wrote {} ({} workloads)", out.display(), rows.len());
}
