//! Ground-core comparison — DPLL baseline, fresh CDCL, and the
//! incremental assumption-based CDCL session — over an expanded workload:
//! the Table I chains (2..=6 relations, all relevant FKs), a
//! selection-augmented chain, the deep 7-relation chain, wide star
//! queries, and seeded random join schemas (the same generator as
//! `tests/random_schemas.rs`).
//!
//! For each workload the sweep records per-config wall time, the
//! `generate/solve` span total and the solver counters (learned clauses,
//! restarts, clause-DB churn, session reuse), verifies that all three
//! configurations agree on every verdict (dataset labels and skip
//! counts), checks that the session configuration produces byte-identical
//! suites for every `--jobs` value, and writes
//! `results/BENCH_solver.json` with a per-shape and total
//! fresh-vs-incremental solve-span comparison.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin solver_sweep
//! ```
//!
//! Environment knobs (used by the CI smoke leg):
//! `XDATA_MAX_RELS` caps the chain length (default 6);
//! `XDATA_STAR_SPOKES` caps the widest star (default 5);
//! `XDATA_RANDOM_CASES` sets the random-schema count (default 6);
//! `XDATA_SWEEP_OUT` overrides the output path.

use xdata_bench::{
    build_json_line, chain_schema, chain_sql, median_time, random_join_cases, relevant_fk_count,
    star_schema, star_sql, write_trace_artifact,
};
use xdata_catalog::DomainCatalog;
use xdata_core::{generate, GenOptions};
use xdata_relalg::normalize;
use xdata_solver::SearchCore;
use xdata_sql::parse_query;

/// The three measured configurations, in baseline-first order.
const CONFIGS: [(&str, SearchCore, bool); 3] = [
    ("dpll", SearchCore::Dpll, false),
    ("cdcl", SearchCore::Cdcl, false),
    ("session", SearchCore::Cdcl, true),
];

/// Everything measured for one (query, config) cell.
#[derive(Default, Clone)]
struct Cell {
    gen_ms: f64,
    solve_span_ms: f64,
    decisions: u64,
    conflicts: u64,
    propagations: u64,
    learned_clauses: u64,
    restarts: u64,
    memo_hit: u64,
    memo_miss: u64,
    unknown_exits: u64,
    assumption_solves: u64,
    reused_clauses: u64,
    phase_saves: u64,
    clause_db_dropped: u64,
}

struct Row {
    name: String,
    datasets: usize,
    skipped: usize,
    cells: [Cell; CONFIGS.len()],
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let max_rels = env_usize("XDATA_MAX_RELS", 6);
    let star_spokes = env_usize("XDATA_STAR_SPOKES", 5);
    let random_cases = env_usize("XDATA_RANDOM_CASES", 6);

    let mut workloads: Vec<(String, String, xdata_catalog::Schema)> = Vec::new();
    // Table I chains with all relevant FKs, plus the deep 7-relation chain.
    for k in 2..=max_rels.clamp(2, 7) {
        let fks = relevant_fk_count(k);
        workloads.push((
            format!("chain-{}join-{}fk", k - 1, fks),
            chain_sql(k),
            chain_schema(k, fks),
        ));
    }
    if max_rels >= 7 || std::env::var("XDATA_MAX_RELS").is_err() {
        let fks = relevant_fk_count(7);
        workloads.push((
            format!("deep-chain-{}join-{}fk", 6, fks),
            chain_sql(7),
            chain_schema(7, fks),
        ));
    }
    // A selection-augmented chain: the constant comparison brings
    // comparison-operator targets (whose `>` case exercises the solve
    // memo against the original-query target).
    {
        let k = 3.min(max_rels.max(2));
        let fks = relevant_fk_count(k);
        let sql = chain_sql(k).replace("WHERE", "WHERE instructor.salary > 50000 AND");
        workloads.push((format!("chain-{}join-sel", k - 1), sql, chain_schema(k, fks)));
    }
    // Wide stars: many same-shape targets over one hub.
    let mut spoke_counts = vec![2];
    if star_spokes > 2 {
        spoke_counts.push(star_spokes);
    }
    for n in spoke_counts {
        workloads.push((format!("star-{n}spoke"), star_sql(n), star_schema(n)));
    }
    // Seeded random schemas (same generator family as the fuzz tests).
    for case in random_join_cases(0x5c4ea, random_cases) {
        workloads.push((case.name, case.sql, case.schema));
    }

    println!(
        "solver core sweep (dpll / fresh cdcl / incremental session) over {} workloads",
        workloads.len()
    );
    println!(
        "{:>22} {:>8} | {:>10} {:>10} | {:>9} {:>9} | {:>8} {:>8} {:>9} {:>8}",
        "query", "config", "gen ms", "solve ms", "decisions", "conflicts", "learned", "memo.hit",
        "asm.slv", "reused",
    );

    let mut rows: Vec<Row> = Vec::new();
    for (name, sql, schema) in &workloads {
        let q = normalize(&parse_query(sql).unwrap(), schema).unwrap();
        let domains = DomainCatalog::defaults(schema);

        let mut cells: [Cell; CONFIGS.len()] = Default::default();
        let mut shapes: Vec<(usize, usize, Vec<String>)> = Vec::new();
        for (ci, &(cname, core, incremental)) in CONFIGS.iter().enumerate() {
            let opts = GenOptions { core, incremental, ..GenOptions::default() };

            // Counter + span pass: one instrumented run.
            xdata_obs::install();
            xdata_obs::preseed();
            let suite = generate(&q, schema, &domains, &opts).expect("generation succeeds");
            let report = xdata_obs::take_report().expect("recorder installed");

            let mut cell = Cell {
                solve_span_ms: report.spans["generate/solve"].total_ns as f64 / 1e6,
                decisions: report.counter("solver.decisions"),
                conflicts: report.counter("solver.conflicts"),
                propagations: report.counter("solver.propagations"),
                learned_clauses: report.counter("solver.learned_clauses"),
                restarts: report.counter("solver.restarts"),
                memo_hit: report.counter("core.solve_memo.hit"),
                memo_miss: report.counter("core.solve_memo.miss"),
                unknown_exits: report.counter("solver.unknown_exits"),
                assumption_solves: report.counter("solver.session.assumption_solves"),
                reused_clauses: report.counter("solver.session.reused_clauses"),
                phase_saves: report.counter("solver.phase_saves"),
                clause_db_dropped: report.counter("solver.clause_db.dropped"),
                ..Cell::default()
            };

            // Timing pass, uninstrumented.
            cell.gen_ms = median_time(1, 3, || {
                generate(&q, schema, &domains, &opts).unwrap();
            })
            .as_secs_f64()
                * 1e3;

            shapes.push((
                suite.datasets.len(),
                suite.skipped.len(),
                suite.datasets.iter().map(|d| d.label.clone()).collect(),
            ));
            println!(
                "{:>22} {:>8} | {:>10.1} {:>10.1} | {:>9} {:>9} | {:>8} {:>8} {:>9} {:>8}",
                name,
                cname,
                cell.gen_ms,
                cell.solve_span_ms,
                cell.decisions,
                cell.conflicts,
                cell.learned_clauses,
                cell.memo_hit,
                cell.assumption_solves,
                cell.reused_clauses,
            );
            cells[ci] = cell;
        }

        // Verdict parity: all three configurations must produce the same
        // suite shape — same dataset labels, same skip count. (Models may
        // legitimately differ; validity is covered by the generator's own
        // checks and `tests/session_parity.rs`.)
        for (ci, &(cname, ..)) in CONFIGS.iter().enumerate().skip(1) {
            assert_eq!(shapes[0].0, shapes[ci].0, "{name}: dataset count differs ({cname})");
            assert_eq!(shapes[0].1, shapes[ci].1, "{name}: skip count differs ({cname})");
            assert_eq!(shapes[0].2, shapes[ci].2, "{name}: dataset labels differ ({cname})");
        }

        rows.push(Row { name: name.clone(), datasets: shapes[0].0, skipped: shapes[0].1, cells });
    }

    // Determinism spot-check: the session configuration must produce a
    // byte-identical suite for every --jobs value on a representative
    // multi-target workload.
    {
        let (_, sql, schema) = &workloads[workloads.len() - 1];
        let q = normalize(&parse_query(sql).unwrap(), schema).unwrap();
        let domains = DomainCatalog::defaults(schema);
        let base = generate(&q, schema, &domains, &GenOptions::default()).unwrap();
        for jobs in [2usize, 4, 0] {
            let par = generate(
                &q,
                schema,
                &domains,
                &GenOptions { jobs, ..GenOptions::default() },
            )
            .unwrap();
            assert_eq!(base.datasets.len(), par.datasets.len(), "jobs={jobs}");
            for (a, b) in base.datasets.iter().zip(&par.datasets) {
                assert_eq!(a.label, b.label, "jobs={jobs}");
                assert_eq!(a.dataset, b.dataset, "jobs={jobs}: session suite diverged");
            }
        }
        println!("\nsession suites byte-identical across --jobs 1/2/4/0");
    }

    let total = |ci: usize, f: &dyn Fn(&Cell) -> f64| -> f64 {
        rows.iter().map(|r| f(&r.cells[ci])).sum()
    };
    let dpll_solve = total(0, &|c| c.solve_span_ms);
    let cdcl_solve = total(1, &|c| c.solve_span_ms);
    let session_solve = total(2, &|c| c.solve_span_ms);
    let speedup = cdcl_solve / session_solve.max(1e-9);
    println!(
        "total solve-span: dpll {dpll_solve:.1} ms, fresh cdcl {cdcl_solve:.1} ms, \
         session {session_solve:.1} ms (session {speedup:.2}x vs fresh cdcl)"
    );

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    json.push_str(&build_json_line());
    json.push_str(
        "  \"workload\": \"Table I chains (all relevant FKs) + deep chain + selection chain + \
         wide stars + seeded random schemas\",\n",
    );
    json.push_str(&format!(
        "  \"configs\": [{}],\n",
        CONFIGS.map(|(n, ..)| format!("\"{n}\"")).join(", ")
    ));
    json.push_str(&format!(
        "  \"total_solve_span_ms\": {{\"dpll\": {dpll_solve:.3}, \"cdcl\": {cdcl_solve:.3}, \
         \"session\": {session_solve:.3}}},\n"
    ));
    json.push_str(&format!("  \"session_speedup_vs_cdcl\": {speedup:.3},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let shape_speedup =
            r.cells[1].solve_span_ms / r.cells[2].solve_span_ms.max(1e-9);
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"datasets\": {}, \"skipped\": {}, \
             \"session_speedup_vs_cdcl\": {:.3},\n",
            r.name, r.datasets, r.skipped, shape_speedup
        ));
        for (ci, &(cname, ..)) in CONFIGS.iter().enumerate() {
            let c = &r.cells[ci];
            json.push_str(&format!(
                "     \"{}\": {{\"generate_ms\": {:.3}, \"solve_span_ms\": {:.3}, \
                 \"decisions\": {}, \"conflicts\": {}, \"propagations\": {}, \
                 \"learned_clauses\": {}, \"restarts\": {}, \"memo_hit\": {}, \
                 \"memo_miss\": {}, \"unknown_exits\": {}, \"assumption_solves\": {}, \
                 \"reused_clauses\": {}, \"phase_saves\": {}, \"clause_db_dropped\": {}}}{}\n",
                cname,
                c.gen_ms,
                c.solve_span_ms,
                c.decisions,
                c.conflicts,
                c.propagations,
                c.learned_clauses,
                c.restarts,
                c.memo_hit,
                c.memo_miss,
                c.unknown_exits,
                c.assumption_solves,
                c.reused_clauses,
                c.phase_saves,
                c.clause_db_dropped,
                if ci + 1 == CONFIGS.len() { "}" } else { "," },
            ));
        }
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    let out_path =
        std::env::var("XDATA_SWEEP_OUT").unwrap_or_else(|_| "results/BENCH_solver.json".into());
    let out = std::path::Path::new(&out_path);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(out, &json).expect("write BENCH_solver.json");
    println!("wrote {} ({} workloads)", out.display(), rows.len());

    // Event-timeline artifact: the session configuration over the first
    // chain workload, journaled in a separate pass — solve verdicts and
    // any restart instants land on the timeline alongside session turns.
    write_trace_artifact(out, || {
        let (_, sql, schema) = &workloads[0];
        let q = normalize(&parse_query(sql).unwrap(), schema).unwrap();
        let domains = DomainCatalog::defaults(schema);
        let (_, core, incremental) = CONFIGS[CONFIGS.len() - 1];
        let opts = GenOptions { core, incremental, ..GenOptions::default() };
        generate(&q, schema, &domains, &opts).expect("generation succeeds");
    });
}
