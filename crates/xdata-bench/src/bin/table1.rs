//! Regenerates **Table I** of the paper: inner-join queries with 1–6 joins
//! (2–7 relations), sweeping the number of foreign keys, reporting datasets
//! generated, mutants killed, and generation time without/with quantifier
//! unfolding. Also writes the table plus an aggregate pipeline metrics
//! report to `results/BENCH_table1.json`.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin table1
//! ```

use xdata_bench::{
    build_json_line, chain_schema, chain_sql, evaluate_query, indent_json, relevant_fk_count,
    secs, write_trace_artifact,
};

fn main() {
    // Tree enumeration cap for mutant counting: the space is exponential;
    // beyond this we sample, as the paper did for 5+ relation queries.
    let tree_limit: usize = std::env::var("XDATA_TREE_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let max_joins: usize = std::env::var("XDATA_MAX_JOINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);

    println!("Table I: results for inner join queries (cf. paper §VI-C.1)");
    println!(
        "{:>5} {:>8} {:>4} {:>10} {:>8} {:>9} {:>14} {:>12}",
        "Query", "#Joins", "#FK", "#Datasets", "#Killed", "#KillRaw", "t w/o unfold", "t unfolded"
    );
    println!("{}", "-".repeat(78));
    // Aggregate solver/pipeline metrics across the whole table run (both
    // modes, every FK point) — embedded in the JSON artifact below.
    xdata_obs::install();
    xdata_obs::preseed();
    let mut json_rows: Vec<String> = Vec::new();
    for joins in 1..=max_joins {
        let k = joins + 1; // relations
        let max_fk = relevant_fk_count(k);
        // The paper shows 0, a middle value and the max; sweep all when few.
        let mut fk_points: Vec<usize> = if max_fk <= 2 {
            (0..=max_fk).collect()
        } else {
            vec![0, max_fk / 2, max_fk]
        };
        fk_points.dedup();
        for n_fks in fk_points {
            let schema = chain_schema(k, n_fks);
            let row = evaluate_query(&chain_sql(k), &schema, tree_limit);
            println!(
                "{:>5} {:>8} {:>4} {:>10} {:>8} {:>9} {:>14} {:>12}",
                joins,
                format!("{joins} ({k})"),
                n_fks,
                row.datasets,
                row.killed,
                row.killed_raw,
                secs(row.time_lazy),
                secs(row.time_unfold),
            );
            json_rows.push(format!(
                "{{\"joins\": {joins}, \"relations\": {k}, \"fks\": {n_fks}, \
                 \"datasets\": {}, \"killed\": {}, \"killed_raw\": {}, \
                 \"lazy_s\": {}, \"unfold_s\": {}}}",
                row.datasets,
                row.killed,
                row.killed_raw,
                secs(row.time_lazy),
                secs(row.time_unfold),
            ));
        }
    }

    // Hand-rolled JSON artifact: the workspace deliberately has no serde.
    let metrics = xdata_obs::take_report().expect("recorder installed").to_json();
    let mut json = String::from("{\n");
    json.push_str(&build_json_line());
    json.push_str(&format!("  \"tree_limit\": {tree_limit},\n"));
    json.push_str("  \"workload\": \"Table I chain queries, FK sweep, lazy+unfold\",\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in json_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {r}{}\n",
            if i + 1 == json_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"metrics\": {}\n", indent_json(&metrics, "  ")));
    json.push_str("}\n");
    let out = std::path::Path::new("results/BENCH_table1.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(out, &json).expect("write BENCH_table1.json");
    println!("\nwrote {}", out.display());

    // Event-timeline artifact: re-run one representative mid-size query
    // under the journal, as a separate pass so tracing never touches the
    // timed sweep above.
    write_trace_artifact(out, || {
        let schema = chain_schema(3, 0);
        evaluate_query(&chain_sql(3), &schema, tree_limit);
    });

    println!(
        "\nNotes: dataset counts exclude the original-query dataset (as in the \
         paper). Mutant counts use canonical-form dedup over enumerated join \
         trees (limit {tree_limit}), full-outer mutations excluded (as in the \
         paper's evaluation). Expected shape: more FKs => fewer datasets & \
         kills; unfolding dramatically faster than lazy instantiation."
    );
}
