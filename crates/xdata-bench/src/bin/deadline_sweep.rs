//! Deadline sweep over the Table I workload: measures what per-target and
//! whole-suite wall-clock budgets cost — and what they buy — by running
//! generation with no deadline, a generous deadline (never fires: measures
//! pure plumbing overhead) and a tiny per-target deadline (fires on
//! essentially every target: measures how fast the pipeline can bail out).
//! Writes `results/BENCH_deadline.json`.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin deadline_sweep
//! ```

use std::time::Duration;

use xdata_bench::{
    build_json_line, chain_schema, chain_sql, median_time, relevant_fk_count,
    write_trace_artifact,
};
use xdata_catalog::DomainCatalog;
use xdata_core::{generate, GenOptions};
use xdata_relalg::normalize;
use xdata_sql::parse_query;

struct SweepRow {
    joins: usize,
    fks: usize,
    targets: usize,
    /// No deadline at all (the pre-existing fast path).
    none_ms: f64,
    /// A deadline that never fires: the cost of the token plumbing.
    generous_ms: f64,
    /// 1 ms per target: the cost of bailing out of everything.
    tiny_ms: f64,
    /// Datasets the tiny-deadline run still completed in time.
    tiny_datasets: usize,
    /// Targets the tiny-deadline run timed out.
    tiny_timeouts: usize,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let max_joins: usize = std::env::var("XDATA_MAX_JOINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    println!("deadline sweep over the Table I chain workload");
    println!(
        "{:>6} {:>4} {:>8} | {:>10} {:>11} {:>8} | {:>9} {:>9}",
        "#Joins", "#FK", "targets", "none ms", "generous ms", "tiny ms", "tiny done", "tiny t/o"
    );

    let mut rows = Vec::new();
    for joins in 2..=max_joins {
        let k = joins + 1;
        let fks = relevant_fk_count(k);
        let schema = chain_schema(k, fks);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);

        let none = GenOptions::default();
        let generous = GenOptions {
            deadline_ms: Some(3_600_000),
            per_target_deadline_ms: Some(3_600_000),
            ..GenOptions::default()
        };
        let tiny = GenOptions { per_target_deadline_ms: Some(1), ..GenOptions::default() };

        // A never-firing deadline must not change the suite.
        let baseline = generate(&q, &schema, &domains, &none).expect("generation succeeds");
        let timed = generate(&q, &schema, &domains, &generous).expect("generation succeeds");
        assert_eq!(baseline.datasets.len(), timed.datasets.len());
        for (a, b) in baseline.datasets.iter().zip(&timed.datasets) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.dataset, b.dataset);
        }

        let tiny_suite = generate(&q, &schema, &domains, &tiny).expect("partial suite, not error");
        let tiny_timeouts = tiny_suite
            .skipped
            .iter()
            .filter(|s| s.reason == xdata_core::SkipReason::Timeout)
            .count();

        let none_ms = ms(median_time(1, 3, || {
            generate(&q, &schema, &domains, &none).unwrap();
        }));
        let generous_ms = ms(median_time(1, 3, || {
            generate(&q, &schema, &domains, &generous).unwrap();
        }));
        let tiny_ms = ms(median_time(1, 3, || {
            generate(&q, &schema, &domains, &tiny).unwrap();
        }));

        let targets = baseline.datasets.len() + baseline.skipped.len();
        println!(
            "{:>6} {:>4} {:>8} | {:>10.1} {:>11.1} {:>8.1} | {:>9} {:>9}",
            joins,
            fks,
            targets,
            none_ms,
            generous_ms,
            tiny_ms,
            tiny_suite.datasets.len(),
            tiny_timeouts,
        );
        rows.push(SweepRow {
            joins,
            fks,
            targets,
            none_ms,
            generous_ms,
            tiny_ms,
            tiny_datasets: tiny_suite.datasets.len(),
            tiny_timeouts,
        });
    }

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    json.push_str(&build_json_line());
    json.push_str("  \"workload\": \"Table I chain queries, all relevant FKs\",\n");
    json.push_str(
        "  \"configs\": [\"no deadline\", \"3600s suite+target deadline (never fires)\", \
         \"1ms per-target deadline\"],\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"joins\": {}, \"fks\": {}, \"targets\": {}, \"none_ms\": {:.3}, \
             \"generous_ms\": {:.3}, \"tiny_ms\": {:.3}, \"tiny_datasets\": {}, \
             \"tiny_timeouts\": {}}}{}\n",
            r.joins,
            r.fks,
            r.targets,
            r.none_ms,
            r.generous_ms,
            r.tiny_ms,
            r.tiny_datasets,
            r.tiny_timeouts,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new("results/BENCH_deadline.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(out, &json).expect("write BENCH_deadline.json");
    println!(
        "\nwrote {} ({} rows); generous-deadline outputs verified identical to no-deadline",
        out.display(),
        rows.len()
    );

    // Event-timeline artifact: the tiny-deadline configuration journaled
    // in a separate pass — cancellation shows up as `core.target.skip`
    // instants with `Timeout` attribution.
    write_trace_artifact(out, || {
        let k = 3;
        let schema = chain_schema(k, relevant_fk_count(k));
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let tiny = GenOptions { per_target_deadline_ms: Some(1), ..GenOptions::default() };
        generate(&q, &schema, &domains, &tiny).expect("partial suite, not error");
    });
}
