//! Grading-at-scale sweep: batch-evaluate 1k+ seeded synthetic candidate
//! queries against Table I chain references, comparing
//!
//! * the amortized [`grade_batch`] path (suite generated once, reference
//!   executed once per dataset, class×dataset grid over the worker pool)
//!   against an *independent* per-candidate loop that regenerates the
//!   suite for every submission (the `XData::grade` semantics);
//! * the hash-join execution path against the nested-loop baseline, with
//!   the rendered verdict report asserted byte-identical between the two.
//!
//! The candidate pool mirrors a course submission pile: exact duplicates
//! and whitespace-noised copies (~30%), explicit-`JOIN` rewrites (collapse
//! into the reference class via the structural fingerprint), commuted
//! `FROM` orders (a classic wrong answer under `SELECT *`: the column
//! order changes), comparison-operator swaps and constant-offset join
//! edits (mutant-derived wrong answers), extra selection predicates with
//! seeded constants (many distinct fail classes), and a few percent of
//! submissions that do not parse or name unknown relations.
//!
//! Writes `results/BENCH_grading.json` (throughput, p50/p99 per-candidate
//! latency, dedup rate, hash-vs-nested and batch-vs-independent speedups)
//! plus the Chrome-trace artifact `results/BENCH_grading.trace.json`.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin grading_sweep
//! ```
//!
//! Environment knobs (used by the CI smoke leg):
//! `XDATA_GRADE_CANDIDATES` sets the total candidate count (default 1200);
//! `XDATA_JOIN_ROWS` sets the largest bulk-join scaling size (default 1600);
//! `XDATA_SWEEP_OUT` overrides the output path.

use std::time::Instant;

use xdata_bench::{build_json_line, chain_schema, chain_sql, median_time, relevant_fk_count,
    write_trace_artifact};
use xdata_catalog::{
    university, Attribute, Dataset, DomainCatalog, Relation, Schema, SplitMix64, SqlType, Value,
};
use xdata_core::{grade_batch, generate, CandidateOutcome, GenOptions};
use xdata_engine::exec::{execute_query_strategy, JoinStrategy};
use xdata_relalg::normalize;
use xdata_sql::parse_query;

/// Render a chain query over `k` relations from an explicit relation order
/// and condition list (so variants can permute and edit them).
fn render_chain(rels: &[&str], conds: &[String]) -> String {
    format!("SELECT * FROM {} WHERE {}", rels.join(", "), conds.join(" AND "))
}

/// The canonical conditions of the `k`-relation chain, as editable strings.
fn chain_conds(k: usize) -> Vec<String> {
    (0..k - 1)
        .map(|i| {
            let (lr, la, rr, ra) = university::join_chain_condition(i);
            format!("{lr}.{la} = {rr}.{ra}")
        })
        .collect()
}

/// Insert doubled spaces at seeded positions — changes the text, not the
/// canonical form, so noised duplicates still collapse in dedup.
fn whitespace_noise(sql: &str, rng: &mut SplitMix64) -> String {
    sql.split(' ')
        .map(|tok| tok.to_string())
        .collect::<Vec<_>>()
        .join(if rng.bool() { "  " } else { " " })
}

/// One freshly-minted variant of the `k`-relation chain reference.
fn fresh_variant(k: usize, rng: &mut SplitMix64) -> String {
    let rels = university::join_chain(k);
    let conds = chain_conds(k);
    match rng.below(100) {
        // Commuted FROM with flipped condition sides: under `SELECT *`
        // the output column order changes, so this is a wrong answer
        // (and its own equivalence class).
        0..=14 => {
            let mut order: Vec<&str> = rels.clone();
            order.reverse();
            let flipped: Vec<String> = conds
                .iter()
                .map(|c| {
                    let (l, r) = c.split_once(" = ").expect("chain cond");
                    format!("{r} = {l}")
                })
                .collect();
            render_chain(&order, &flipped)
        }
        // Comparison-operator swap on one join condition, optionally with
        // a constant offset: the mutation space's wrong answers.
        15..=44 => {
            let i = rng.below(conds.len());
            let op = *rng.pick(&["<", ">", "<=", ">=", "<>"]);
            let mut edited = conds.clone();
            let (l, r) = edited[i].split_once(" = ").expect("chain cond");
            edited[i] = if rng.bool() {
                format!("{l} {op} {r}")
            } else {
                format!("{l} {op} {r} + {}", 1 + rng.below(997))
            };
            render_chain(&rels, &edited)
        }
        // Extra selection predicate with a seeded constant: a large family
        // of distinct equivalence classes.
        45..=84 => {
            let op = *rng.pick(&["<", ">", "<=", ">="]);
            let c = rng.range_i64(1, 100_000);
            let mut edited = conds.clone();
            edited.push(format!("instructor.salary {op} {c}"));
            render_chain(&rels, &edited)
        }
        // Join-kind rewrites (2-relation chains only): explicit JOIN
        // collapses into the reference class; LEFT OUTER is a wrong
        // answer; RIGHT OUTER passes when the FK covers the right side.
        85..=94 if k == 2 => {
            let kind = *rng.pick(&["JOIN", "LEFT OUTER JOIN", "RIGHT OUTER JOIN"]);
            format!("SELECT * FROM instructor {kind} teaches ON {}", conds[0])
        }
        // Submissions that never grade: a parse error or a relation the
        // schema does not know (normalization error).
        95..=96 => "SELECT FROM WHERE".to_string(),
        97 => format!("SELECT * FROM missing_relation_{}", rng.below(1000)),
        // Whitespace-noised exact duplicate of the reference.
        _ => whitespace_noise(&render_chain(&rels, &conds), rng),
    }
}

/// The seeded candidate pile for one reference: ~30% duplicates of earlier
/// submissions (with whitespace noise), the rest fresh variants.
fn candidate_pile(k: usize, n: usize, seed: u64) -> Vec<String> {
    let mut rng = SplitMix64::new(seed);
    let mut pile: Vec<String> = Vec::with_capacity(n);
    while pile.len() < n {
        if !pile.is_empty() && rng.chance(3, 10) {
            let dup = pile[rng.below(pile.len())].clone();
            pile.push(whitespace_noise(&dup, &mut rng));
        } else {
            pile.push(fresh_variant(k, &mut rng));
        }
    }
    pile
}

/// The independent baseline: grade each candidate alone, regenerating the
/// reference suite per call and early-exiting on the first differing
/// dataset — exactly what a per-submission `XData::grade` loop costs.
/// Returns `None` for submissions that fail to parse/normalize, otherwise
/// `Some(first_differing_dataset)` (`None` inside = agreed everywhere).
#[allow(clippy::option_option)]
fn grade_independent(
    reference_sql: &str,
    candidate: &str,
    schema: &Schema,
    domains: &DomainCatalog,
    opts: &GenOptions,
) -> Option<Option<usize>> {
    let reference = normalize(&parse_query(reference_sql).ok()?, schema).ok()?;
    let q = normalize(&parse_query(candidate).ok()?, schema).ok()?;
    let suite = generate(&reference, schema, domains, opts).expect("suite generates");
    for (di, d) in suite.datasets.iter().enumerate() {
        let want = execute_query_strategy(&reference, &d.dataset, schema, JoinStrategy::Hash)
            .expect("reference executes");
        match execute_query_strategy(&q, &d.dataset, schema, JoinStrategy::Hash) {
            Ok(got) if got != want => return Some(Some(di)),
            Ok(_) => {}
            Err(_) => return Some(None), // ExecError: counted as graded.
        }
    }
    Some(None)
}

/// Hash-vs-nested scaling on *bulk* data. Grading-suite datasets are
/// deliberately minimal (a handful of rows), so the grid shows the two
/// strategies at parity cost; the asymptotic O(n·m) → O(n+m) win appears
/// once joins carry real row counts — this measures it directly, on the
/// same execution paths the grader uses, with result parity asserted.
fn join_scaling(sizes: &[usize]) -> Vec<(usize, f64, f64)> {
    let mut schema = Schema::new();
    schema
        .add_relation(
            Relation::new(
                "a",
                vec![Attribute::new("id", SqlType::Int), Attribute::new("v", SqlType::Int)],
                &["id"],
            )
            .expect("relation a"),
        )
        .expect("add a");
    schema
        .add_relation(
            Relation::new(
                "b",
                vec![
                    Attribute::new("id", SqlType::Int),
                    Attribute::new("a_id", SqlType::Int),
                    Attribute::new("w", SqlType::Int),
                ],
                &["id"],
            )
            .expect("relation b"),
        )
        .expect("add b");
    let q = normalize(&parse_query("SELECT * FROM a, b WHERE a.id = b.a_id").unwrap(), &schema)
        .expect("scaling query normalizes");

    sizes
        .iter()
        .map(|&n| {
            let mut d = Dataset::new();
            for i in 0..n as i64 {
                d.push("a", vec![Value::Int(i), Value::Int(i * 7)]);
                d.push("b", vec![Value::Int(i), Value::Int(i % (n as i64 / 2).max(1)), Value::Int(i)]);
            }
            let hash = execute_query_strategy(&q, &d, &schema, JoinStrategy::Hash).unwrap();
            let nested = execute_query_strategy(&q, &d, &schema, JoinStrategy::NestedLoop).unwrap();
            assert_eq!(hash.rows(), nested.rows(), "join scaling parity at {n} rows");
            let hash_ms = median_time(1, 3, || {
                execute_query_strategy(&q, &d, &schema, JoinStrategy::Hash).unwrap();
            })
            .as_secs_f64()
                * 1e3;
            let nested_ms = median_time(1, 3, || {
                execute_query_strategy(&q, &d, &schema, JoinStrategy::NestedLoop).unwrap();
            })
            .as_secs_f64()
                * 1e3;
            (n, hash_ms, nested_ms)
        })
        .collect()
}

/// Percentile (nearest-rank) of a sorted slice, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.saturating_sub(1).min(sorted_ns.len() - 1)] as f64 / 1e6
}

struct Row {
    name: String,
    candidates: usize,
    classes: usize,
    dedup_hits: usize,
    invalid: usize,
    passed: usize,
    datasets: usize,
    batch_hash_ms: f64,
    batch_nested_ms: f64,
    independent_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    grade_span_ms: f64,
    hash_nodes: u64,
    hash_fallback: u64,
    hash_build_rows: u64,
    hash_probe_rows: u64,
}

fn main() {
    let total: usize = std::env::var("XDATA_GRADE_CANDIDATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200);
    // Table I references: the 1-join and 2-join chains with all relevant
    // FKs. The candidate budget splits across them.
    let refs: Vec<(String, String, Schema)> = [2usize, 3]
        .iter()
        .map(|&k| {
            let fks = relevant_fk_count(k);
            (format!("chain-{}join-{fks}fk", k - 1), chain_sql(k), chain_schema(k, fks))
        })
        .collect();
    let per_ref = total.div_ceil(refs.len());
    let opts = GenOptions::default();

    println!("grading sweep: {total} candidates across {} Table I references", refs.len());
    println!(
        "{:>18} {:>6} {:>8} {:>6} {:>7} | {:>10} {:>11} {:>11} | {:>8} {:>8}",
        "reference", "cands", "classes", "dups", "invalid", "batch ms", "nested ms", "indep ms",
        "p50 ms", "p99 ms",
    );

    let mut rows: Vec<Row> = Vec::new();
    for (ri, (name, reference, schema)) in refs.iter().enumerate() {
        let k = ri + 2;
        let pile = candidate_pile(k, per_ref, 0x6ead_e5ee_d000 ^ ri as u64);
        let domains = DomainCatalog::defaults(schema);

        // Instrumented pass: dedup + hash-join counters and the grade span.
        xdata_obs::install();
        xdata_obs::preseed();
        let report = grade_batch(reference, &pile, schema, &domains, &opts, JoinStrategy::Hash)
            .expect("batch grades");
        let metrics = xdata_obs::take_report().expect("recorder installed");
        assert!(!report.partial, "{name}: bench suite must be complete");

        // Hash/nested verdict parity: byte-identical rendered reports.
        let nested =
            grade_batch(reference, &pile, schema, &domains, &opts, JoinStrategy::NestedLoop)
                .expect("nested batch grades");
        assert_eq!(report.render(), nested.render(), "{name}: hash/nested verdicts diverge");

        // Timing passes, uninstrumented.
        let batch_hash_ms = median_time(1, 3, || {
            grade_batch(reference, &pile, schema, &domains, &opts, JoinStrategy::Hash).unwrap();
        })
        .as_secs_f64()
            * 1e3;
        let batch_nested_ms = median_time(1, 3, || {
            grade_batch(reference, &pile, schema, &domains, &opts, JoinStrategy::NestedLoop)
                .unwrap();
        })
        .as_secs_f64()
            * 1e3;

        // Independent baseline: one full grade per candidate, with verdict
        // parity against the batch asserted as it goes.
        let start = Instant::now();
        let mut independent: Vec<Option<Option<usize>>> = Vec::with_capacity(pile.len());
        for sql in &pile {
            independent.push(grade_independent(reference, sql, schema, &domains, &opts));
        }
        let independent_ms = start.elapsed().as_secs_f64() * 1e3;
        for (v, ind) in report.verdicts.iter().zip(&independent) {
            match (&v.outcome, ind) {
                (CandidateOutcome::Invalid { .. }, None) => {}
                (CandidateOutcome::Pass, Some(None)) => {}
                (CandidateOutcome::ExecError { .. }, Some(None)) => {}
                (CandidateOutcome::Fail { first_dataset, .. }, Some(Some(di))) => {
                    assert_eq!(first_dataset, di, "{name} #{}: first witness differs", v.index);
                }
                (o, i) => panic!("{name} #{}: batch {o:?} vs independent {i:?}", v.index),
            }
        }

        // Per-candidate latency: each graded candidate is charged its
        // class's grid time (dedup hits share the class's single
        // execution — the amortization shows up in throughput, not here).
        let mut per_candidate_ns: Vec<u64> = report
            .verdicts
            .iter()
            .filter_map(|v| v.class.map(|c| report.class_eval_ns[c]))
            .collect();
        per_candidate_ns.sort_unstable();
        let p50_ms = percentile_ms(&per_candidate_ns, 50.0);
        let p99_ms = percentile_ms(&per_candidate_ns, 99.0);

        let invalid = report
            .verdicts
            .iter()
            .filter(|v| matches!(v.outcome, CandidateOutcome::Invalid { .. }))
            .count();
        let row = Row {
            name: name.clone(),
            candidates: pile.len(),
            classes: report.classes,
            dedup_hits: report.dedup_hits,
            invalid,
            passed: report.passed(),
            datasets: report.datasets,
            batch_hash_ms,
            batch_nested_ms,
            independent_ms,
            p50_ms,
            p99_ms,
            grade_span_ms: metrics.spans["grade"].total_ns as f64 / 1e6,
            hash_nodes: metrics.counter("engine.hash_join.nodes"),
            hash_fallback: metrics.counter("engine.hash_join.fallback_nodes"),
            hash_build_rows: metrics.counter("engine.hash_join.build_rows"),
            hash_probe_rows: metrics.counter("engine.hash_join.probe_rows"),
        };
        println!(
            "{:>18} {:>6} {:>8} {:>6} {:>7} | {:>10.1} {:>11.1} {:>11.1} | {:>8.3} {:>8.3}",
            row.name,
            row.candidates,
            row.classes,
            row.dedup_hits,
            row.invalid,
            row.batch_hash_ms,
            row.batch_nested_ms,
            row.independent_ms,
            row.p50_ms,
            row.p99_ms,
        );
        rows.push(row);
    }

    let candidates: usize = rows.iter().map(|r| r.candidates).sum();
    let dedup_hits: usize = rows.iter().map(|r| r.dedup_hits).sum();
    let batch_ms: f64 = rows.iter().map(|r| r.batch_hash_ms).sum();
    let nested_ms: f64 = rows.iter().map(|r| r.batch_nested_ms).sum();
    let independent_ms: f64 = rows.iter().map(|r| r.independent_ms).sum();
    let dedup_rate = dedup_hits as f64 / candidates.max(1) as f64;
    let throughput = candidates as f64 / (batch_ms / 1e3).max(1e-9);
    let grid_speedup = nested_ms / batch_ms.max(1e-9);
    let batch_speedup = independent_ms / batch_ms.max(1e-9);
    println!(
        "total: {candidates} candidates in {batch_ms:.1} ms ({throughput:.0}/s), \
         dedup rate {:.1}%, grid hash vs nested {grid_speedup:.2}x, \
         batch vs independent {batch_speedup:.2}x",
        dedup_rate * 100.0
    );
    if candidates >= 1000 {
        assert!(
            batch_speedup >= 5.0,
            "batch grading must amortize at least 5x over independent calls \
             (got {batch_speedup:.2}x)"
        );
    }

    // Bulk-join scaling: where the hash path's asymptotic win lives.
    let max_rows: usize = std::env::var("XDATA_JOIN_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1600);
    let sizes = [max_rows.div_ceil(16).max(1), max_rows.div_ceil(4).max(1), max_rows.max(1)];
    let scaling = join_scaling(&sizes);
    for &(n, hash_ms, nested_ms) in &scaling {
        println!(
            "join scaling {n:>6} rows/side: hash {hash_ms:>8.3} ms, nested {nested_ms:>8.3} ms \
             ({:.1}x)",
            nested_ms / hash_ms.max(1e-9)
        );
    }
    let (_, top_hash_ms, top_nested_ms) = *scaling.last().expect("at least one size");
    let hash_speedup = top_nested_ms / top_hash_ms.max(1e-9);
    if max_rows >= 1600 {
        assert!(
            hash_speedup >= 2.0,
            "hash join must beat nested loop on bulk data (got {hash_speedup:.2}x)"
        );
    }

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    json.push_str(&build_json_line());
    json.push_str(
        "  \"workload\": \"seeded synthetic submission piles (duplicates, commuted FROM, \
         cmp-op swaps, join-kind rewrites, extra predicates, parse errors) over Table I \
         chain references\",\n",
    );
    json.push_str(&format!("  \"candidates\": {candidates},\n"));
    json.push_str(&format!(
        "  \"dedup\": {{\"hits\": {dedup_hits}, \"rate\": {dedup_rate:.4}}},\n"
    ));
    json.push_str(&format!("  \"batch_hash_ms\": {batch_ms:.3},\n"));
    json.push_str(&format!("  \"batch_nested_ms\": {nested_ms:.3},\n"));
    json.push_str(&format!("  \"independent_ms\": {independent_ms:.3},\n"));
    json.push_str(&format!("  \"throughput_candidates_per_s\": {throughput:.1},\n"));
    json.push_str(&format!("  \"grid_hash_vs_nested_speedup\": {grid_speedup:.3},\n"));
    json.push_str(&format!("  \"hash_vs_nested_speedup\": {hash_speedup:.3},\n"));
    json.push_str(&format!("  \"batch_vs_independent_speedup\": {batch_speedup:.3},\n"));
    json.push_str("  \"join_scaling\": [\n");
    for (i, &(n, h, nl)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows_per_side\": {n}, \"hash_ms\": {h:.4}, \"nested_ms\": {nl:.4}, \
             \"speedup\": {:.3}}}{}\n",
            nl / h.max(1e-9),
            if i + 1 == scaling.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"reference\": \"{}\", \"candidates\": {}, \"classes\": {}, \
             \"dedup_hits\": {}, \"invalid\": {}, \"passed\": {}, \"datasets\": {},\n     \
             \"batch_hash_ms\": {:.3}, \"batch_nested_ms\": {:.3}, \"independent_ms\": {:.3}, \
             \"p50_candidate_ms\": {:.4}, \"p99_candidate_ms\": {:.4}, \
             \"grade_span_ms\": {:.3},\n     \
             \"hash_join\": {{\"nodes\": {}, \"fallback_nodes\": {}, \"build_rows\": {}, \
             \"probe_rows\": {}}}}}{}\n",
            r.name,
            r.candidates,
            r.classes,
            r.dedup_hits,
            r.invalid,
            r.passed,
            r.datasets,
            r.batch_hash_ms,
            r.batch_nested_ms,
            r.independent_ms,
            r.p50_ms,
            r.p99_ms,
            r.grade_span_ms,
            r.hash_nodes,
            r.hash_fallback,
            r.hash_build_rows,
            r.hash_probe_rows,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let out_path =
        std::env::var("XDATA_SWEEP_OUT").unwrap_or_else(|_| "results/BENCH_grading.json".into());
    let out = std::path::Path::new(&out_path);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(out, &json).expect("write BENCH_grading.json");
    println!("wrote {} ({} references)", out.display(), rows.len());

    // Event-timeline artifact: one representative batch over the first
    // reference, journaled in a separate pass so tracing overhead never
    // contaminates the measured numbers.
    write_trace_artifact(out, || {
        let (_, reference, schema) = &refs[0];
        let pile = candidate_pile(2, per_ref.min(200), 0x6ead_e5ee_d000);
        let domains = DomainCatalog::defaults(schema);
        grade_batch(reference, &pile, schema, &domains, &opts, JoinStrategy::Hash)
            .expect("batch grades");
    });
}
