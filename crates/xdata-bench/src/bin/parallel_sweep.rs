//! Thread-count sweep over the Table I workload: runs suite generation and
//! kill evaluation with 1, 2, 4 and 8 worker threads, verifies the outputs
//! are identical across thread counts, and writes the timings to
//! `results/BENCH_parallel.json`.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin parallel_sweep
//! ```

use std::time::Duration;

use xdata_bench::{
    build_json_line, chain_schema, chain_sql, indent_json, median_time, relevant_fk_count,
    write_trace_artifact,
};
use xdata_catalog::DomainCatalog;
use xdata_core::{generate, GenOptions};
use xdata_engine::kill::kill_report_jobs;
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::normalize;
use xdata_sql::parse_query;

const JOBS: [usize; 4] = [1, 2, 4, 8];

struct SweepRow {
    joins: usize,
    fks: usize,
    datasets: usize,
    mutants: usize,
    gen_ms: [f64; JOBS.len()],
    kill_ms: [f64; JOBS.len()],
    /// Rendered `MetricsReport` of the canonical jobs=1 generate+kill run.
    metrics: String,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let tree_limit: usize = std::env::var("XDATA_TREE_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let max_joins: usize = std::env::var("XDATA_MAX_JOINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("parallel sweep over the Table I chain workload ({cores} cores available)");
    println!(
        "{:>6} {:>4} {:>9} {:>8} | {:>30} | {:>30}",
        "#Joins", "#FK", "#Datasets", "#Mutants", "generate ms (1/2/4/8 jobs)", "kill ms (1/2/4/8 jobs)"
    );

    let mut rows = Vec::new();
    for joins in 2..=max_joins {
        let k = joins + 1;
        let fks = relevant_fk_count(k);
        let schema = chain_schema(k, fks);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);

        // Record pipeline metrics for the canonical sequential run only, so
        // the embedded report reflects one generate + one kill pass (the
        // timing sweep below re-runs the same work many times over).
        xdata_obs::install();
        xdata_obs::preseed();
        let baseline =
            generate(&q, &schema, &domains, &GenOptions::default()).expect("generation succeeds");
        let space = mutation_space(
            &q,
            MutationOptions { include_full: false, include_extensions: false, tree_limit },
        );
        let base_report =
            kill_report_jobs(&q, &space, &baseline.data(), &schema, 1).expect("kill succeeds");
        let metrics = xdata_obs::take_report().expect("recorder installed").to_json();

        let mut gen_ms = [0.0; JOBS.len()];
        let mut kill_ms = [0.0; JOBS.len()];
        for (ji, &jobs) in JOBS.iter().enumerate() {
            let opts = GenOptions { jobs, ..GenOptions::default() };
            // Determinism check rides along: every thread count must
            // reproduce the sequential suite and kill matrix exactly.
            let suite = generate(&q, &schema, &domains, &opts).unwrap();
            assert_eq!(suite.datasets.len(), baseline.datasets.len(), "jobs={jobs}");
            for (a, b) in baseline.datasets.iter().zip(&suite.datasets) {
                assert_eq!(a.label, b.label, "jobs={jobs}");
                assert_eq!(a.dataset, b.dataset, "jobs={jobs}");
            }
            let report = kill_report_jobs(&q, &space, &suite.data(), &schema, jobs).unwrap();
            assert_eq!(report.killed_by, base_report.killed_by, "jobs={jobs}");

            gen_ms[ji] = ms(median_time(1, 3, || {
                generate(&q, &schema, &domains, &opts).unwrap();
            }));
            kill_ms[ji] = ms(median_time(1, 3, || {
                kill_report_jobs(&q, &space, &baseline.data(), &schema, jobs).unwrap();
            }));
        }

        let fmt4 = |xs: &[f64; 4]| {
            format!("{:>6.1} {:>6.1} {:>6.1} {:>6.1}", xs[0], xs[1], xs[2], xs[3])
        };
        println!(
            "{:>6} {:>4} {:>9} {:>8} | {:>30} | {:>30}",
            joins,
            fks,
            baseline.datasets.len(),
            space.len(),
            fmt4(&gen_ms),
            fmt4(&kill_ms),
        );
        rows.push(SweepRow {
            joins,
            fks,
            datasets: baseline.datasets.len(),
            mutants: space.len(),
            gen_ms,
            kill_ms,
            metrics,
        });
    }

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    json.push_str(&build_json_line());
    json.push_str(&format!("  \"cores_available\": {cores},\n"));
    json.push_str(&format!(
        "  \"jobs\": [{}],\n",
        JOBS.map(|j| j.to_string()).join(", ")
    ));
    json.push_str("  \"workload\": \"Table I chain queries, all relevant FKs\",\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let nums = |xs: &[f64; 4]| {
            xs.iter().map(|x| format!("{x:.3}")).collect::<Vec<_>>().join(", ")
        };
        json.push_str(&format!(
            "    {{\"joins\": {}, \"fks\": {}, \"datasets\": {}, \"mutants\": {}, \
             \"generate_ms\": [{}], \"kill_ms\": [{}],\n     \"metrics\": {}}}{}\n",
            r.joins,
            r.fks,
            r.datasets,
            r.mutants,
            nums(&r.gen_ms),
            nums(&r.kill_ms),
            indent_json(&r.metrics, "     "),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::path::Path::new("results/BENCH_parallel.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(out, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {} ({} rows); outputs verified identical across jobs {:?}", out.display(), rows.len(), JOBS);

    // Event-timeline artifact: one generate+kill pass at the widest sweep
    // point under the journal — queue-wait vs run and turn-gate waits show
    // up as `par.claim` instants and `generate/solve/gate` spans.
    write_trace_artifact(out, || {
        let k = 4;
        let fks = relevant_fk_count(k);
        let schema = chain_schema(k, fks);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let jobs = *JOBS.last().unwrap();
        let opts = GenOptions { jobs, ..GenOptions::default() };
        let suite = generate(&q, &schema, &domains, &opts).unwrap();
        let space = mutation_space(
            &q,
            MutationOptions { include_full: false, include_extensions: false, tree_limit },
        );
        kill_report_jobs(&q, &space, &suite.data(), &schema, jobs).unwrap();
    });

    if cores == 1 {
        println!("note: only 1 core available — speedups cannot materialize on this machine.");
    }
}
