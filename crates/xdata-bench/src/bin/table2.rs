//! Regenerates **Table II** of the paper: queries mixing selections,
//! aggregations and joins (queries 7–12 of §VI-C.2).
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin table2
//! ```

use xdata_bench::{chain_schema, evaluate_query, secs};

fn main() {
    // The paper: "queries involving joins contained exactly one foreign
    // key"; join-free queries run on the FK-free schema.
    let cases: &[(&str, usize, usize, usize, &str)] = &[
        // (query id, #joins, #selections, #aggregations, SQL)
        ("7", 0, 1, 0, "SELECT * FROM instructor WHERE salary > 70000"),
        ("8", 0, 0, 1, "SELECT COUNT(salary) FROM instructor"),
        (
            "9",
            1,
            0,
            1,
            "SELECT i.dept_id, SUM(i.salary) FROM instructor i, teaches t \
             WHERE i.id = t.id GROUP BY i.dept_id",
        ),
        (
            "10",
            2,
            1,
            0,
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id AND i.salary > 70000",
        ),
        (
            "11",
            2,
            2,
            0,
            "SELECT * FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id \
             AND i.salary > 70000 AND c.credits >= 3",
        ),
        (
            "12",
            2,
            1,
            1,
            "SELECT i.dept_id, AVG(i.salary) FROM instructor i, teaches t, course c \
             WHERE i.id = t.id AND t.course_id = c.course_id AND c.credits >= 3 \
             GROUP BY i.dept_id",
        ),
    ];

    println!("Table II: results for queries with selection/aggregation (cf. paper §VI-C.2)");
    println!(
        "{:>5} {:>6} {:>5} {:>4} {:>10} {:>8} {:>14} {:>12}",
        "Query", "#Joins", "#Sel", "#Agg", "#Datasets", "#Killed", "t w/o unfold", "t unfolded"
    );
    println!("{}", "-".repeat(72));
    for (id, joins, sels, aggs, sql) in cases {
        // Join queries: one FK (as in the paper); others: none.
        let k = joins + 1;
        let schema = chain_schema(k.max(2), usize::from(*joins > 0));
        let row = evaluate_query(sql, &schema, 20_000);
        println!(
            "{:>5} {:>6} {:>5} {:>4} {:>10} {:>8} {:>14} {:>12}",
            id,
            joins,
            sels,
            aggs,
            row.datasets,
            row.killed,
            secs(row.time_lazy),
            secs(row.time_unfold),
        );
    }
    println!(
        "\nNotes: comparison-operator datasets are 3 per selection conjunct \
         (`=`, `<`, `>`); aggregate datasets 1 per aggregate (Algorithm 4); \
         killed counts cover join + comparison + aggregate mutants under \
         canonical-form dedup. Expected shape: aggregation queries take \
         longest without unfolding (3 tuple sets per relation, §VI-C.2), and \
         unfolding recovers most of the time."
    );
}
