//! Service-mode sweep: measure the persistent daemon (`xdata-serve`) over
//! real loopback TCP with the typed `xdata-client`, producing
//! `results/BENCH_serve.json`.
//!
//! Three measurements, parity-asserted before anything is timed (every
//! wire response must be byte-identical to the in-process pipeline's
//! output — the daemon's whole contract):
//!
//! * **cold vs warm** — the first `generate` on a fresh daemon pays full
//!   suite generation; repeats of the same request replay the warm
//!   cache's memoized solves. The bench *asserts* warm p50 < cold, so a
//!   regression that stops the memo from being hit fails the run rather
//!   than silently shipping slower numbers.
//! * **saturation** — N client threads (N ∈ {1, 2, 4, 8}), each on its own
//!   connection and its own tenant (disjoint warm namespaces, so every
//!   request does real solve work), round-robin over three queries.
//!   Reports p50/p99 request latency and throughput per client count.
//! * **scaling** — peak throughput over the 1-client baseline.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin serve_sweep
//! ```
//!
//! Environment knobs (used by the CI smoke leg):
//! `XDATA_SERVE_REQUESTS` sets requests per client per round (default 12);
//! `XDATA_SERVE_WORKERS` sets the daemon worker-pool size (default 8);
//! `XDATA_SWEEP_OUT` overrides the output path.

use std::time::Instant;

use xdata_bench::build_json_line;
use xdata_client::{Client, WireOptions};
use xdata_core::generate;
use xdata_relalg::normalize;
use xdata_serve::{Server, ServerConfig, ServerHandle};
use xdata_sql::parse_query;

const SCHEMA: &str = include_str!("../../../../examples/university.sql");

const QUERIES: [&str; 3] = [
    "SELECT name FROM instructor WHERE salary > 75000",
    "SELECT i.name, t.course_id FROM instructor i, teaches t WHERE i.id = t.id",
    "SELECT name FROM instructor WHERE dept_id = 7 AND salary < 90000",
];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn spawn_daemon(workers: usize) -> ServerHandle {
    let config = ServerConfig { workers, ..ServerConfig::default() };
    Server::bind(config).expect("bind ephemeral port").spawn().expect("spawn daemon")
}

/// The expected bytes for each query, from the in-process pipeline the
/// daemon must reproduce exactly.
fn expected_outputs() -> Vec<String> {
    let (schema, data) = xdata_sql::parse_script(SCHEMA).expect("schema parses");
    assert!(data.is_empty(), "university.sql grew INSERTs; mirror the domain setup here");
    let domains = xdata_catalog::DomainCatalog::defaults(&schema);
    let opts = xdata_core::GenOptions::default();
    QUERIES
        .iter()
        .map(|sql| {
            let ast = parse_query(sql).expect("query parses");
            let query = normalize(&ast, &schema).expect("query normalizes");
            generate(&query, &schema, &domains, &opts).expect("suite generates").to_string()
        })
        .collect()
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

struct SweepRow {
    clients: usize,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
}

/// One saturation round: `clients` threads, each with its own connection
/// and tenant, each issuing `per_client` parity-checked generate requests.
fn saturation_round(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    expected: &[String],
) -> SweepRow {
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let expected = expected.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr)
                    .expect("connect")
                    .with_tenant(&format!("sweep-{clients}-{c}"));
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let q = (c + i) % QUERIES.len();
                    let t = Instant::now();
                    let payload = client
                        .generate(SCHEMA, QUERIES[q], WireOptions::default())
                        .expect("generate over the wire");
                    latencies.push(ms(t.elapsed()));
                    assert_eq!(payload.output, expected[q], "wire output diverged (parity)");
                }
                latencies
            })
        })
        .collect();
    let mut all: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = wall.elapsed();
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    SweepRow {
        clients,
        requests: all.len(),
        p50_ms: percentile(&all, 0.50),
        p99_ms: percentile(&all, 0.99),
        throughput_rps: all.len() as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let per_client = env_usize("XDATA_SERVE_REQUESTS", 12);
    let workers = env_usize("XDATA_SERVE_WORKERS", 8);
    let expected = expected_outputs();

    // Cold vs warm, on a dedicated fresh daemon so daemon lifetime state
    // is exactly "one cold request, then repeats".
    let server = spawn_daemon(workers);
    let mut client = Client::connect(server.addr()).expect("connect");
    let t = Instant::now();
    let cold = client.generate(SCHEMA, QUERIES[0], WireOptions::default()).expect("cold");
    let cold_ms = ms(t.elapsed());
    assert_eq!(cold.output, expected[0], "cold wire output diverged (parity)");
    let warm_rounds = per_client.max(5);
    let mut warm: Vec<f64> = (0..warm_rounds)
        .map(|_| {
            let t = Instant::now();
            let p = client.generate(SCHEMA, QUERIES[0], WireOptions::default()).expect("warm");
            let d = ms(t.elapsed());
            assert_eq!(p.output, expected[0], "warm wire output diverged (parity)");
            d
        })
        .collect();
    server.shutdown().expect("clean shutdown");
    warm.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let warm_p50 = percentile(&warm, 0.50);
    assert!(
        warm_p50 < cold_ms,
        "warm requests must beat the cold request (warm p50 {warm_p50:.3}ms vs cold {cold_ms:.3}ms) — the warm cache is not being hit"
    );

    // Saturation sweep on one shared daemon (tenants keep the work cold).
    let server = spawn_daemon(workers);
    let rows: Vec<SweepRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| {
            let row = saturation_round(server.addr(), n, per_client, &expected);
            println!(
                "clients {:>2}: {:>3} requests, p50 {:>8.3}ms, p99 {:>8.3}ms, {:>7.1} req/s",
                row.clients, row.requests, row.p50_ms, row.p99_ms, row.throughput_rps
            );
            row
        })
        .collect();
    server.shutdown().expect("clean shutdown");

    let base_rps = rows[0].throughput_rps;
    let peak = rows.iter().map(|r| r.throughput_rps).fold(0.0f64, f64::max);

    let mut json = String::from("{\n");
    json.push_str(&build_json_line());
    json.push_str(&format!(
        "  \"config\": {{\"workers\": {workers}, \"requests_per_client\": {per_client}, \
         \"queries\": {}}},\n",
        QUERIES.len()
    ));
    json.push_str(&format!(
        "  \"cold_vs_warm\": {{\"cold_ms\": {cold_ms:.4}, \"warm_p50_ms\": {warm_p50:.4}, \
         \"warm_p99_ms\": {:.4}, \"warm_rounds\": {warm_rounds}, \"warm_speedup\": {:.2}}},\n",
        percentile(&warm, 0.99),
        cold_ms / warm_p50.max(1e-9),
    ));
    json.push_str("  \"saturation\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"throughput_rps\": {:.2}}}{}\n",
            r.clients,
            r.requests,
            r.p50_ms,
            r.p99_ms,
            r.throughput_rps,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"scaling\": {{\"throughput_rps_1_client\": {base_rps:.2}, \
         \"peak_throughput_rps\": {peak:.2}, \"peak_over_1_client\": {:.2}}}\n",
        peak / base_rps.max(1e-9),
    ));
    json.push_str("}\n");

    let out_path =
        std::env::var("XDATA_SWEEP_OUT").unwrap_or_else(|_| "results/BENCH_serve.json".into());
    let out = std::path::Path::new(&out_path);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(out, &json).expect("write BENCH_serve.json");
    println!("wrote {}", out.display());
}
