//! Regenerates the **§VI-C.3 input-database experiment**: the 4-relation
//! no-foreign-key join query with generated tuples forced to come from an
//! input database of 5 and 9 tuples per relation.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin inputdb
//! ```

use std::time::Instant;

use xdata_bench::{chain_schema, chain_sql, secs};
use xdata_catalog::{university, DomainCatalog};
use xdata_core::{generate, GenOptions};
use xdata_relalg::normalize;
use xdata_solver::Mode;
use xdata_sql::parse_query;

fn main() {
    let schema = chain_schema(5, 0); // 4 joins, 0 FKs — the paper's setup
    let sql = chain_sql(5);
    let q = normalize(&parse_query(&sql).unwrap(), &schema).unwrap();

    println!("Input-database experiment (cf. paper §VI-C.3)");
    println!("query: 4 joins (5 relations), no foreign keys, unfolded quantifiers");
    println!("{:>22} {:>12} {:>10}", "input DB size", "total time", "#datasets");
    println!("{}", "-".repeat(48));

    // Reference point: synthetic generation, no input database.
    {
        let domains = DomainCatalog::defaults(&schema);
        let opts = GenOptions { mode: Mode::Unfold, input_db: None, compare_attr_pairs: true, jobs: 1, ..GenOptions::default() };
        let t = Instant::now();
        let suite = generate(&q, &schema, &domains, &opts).unwrap();
        println!(
            "{:>22} {:>12} {:>10}",
            "none (synthetic)",
            secs(t.elapsed()),
            suite.datasets.len()
        );
    }

    for n in [5usize, 9] {
        let input = university::sample_data(n);
        let domains = DomainCatalog::from_dataset(&schema, &input);
        let opts = GenOptions {
            mode: Mode::Unfold,
            input_db: Some(input),
            compare_attr_pairs: true,
            jobs: 1,
            ..GenOptions::default()
        };
        let t = Instant::now();
        let suite = generate(&q, &schema, &domains, &opts).unwrap();
        println!(
            "{:>22} {:>12} {:>10}",
            format!("{n} tuples/relation"),
            secs(t.elapsed()),
            suite.datasets.len()
        );
    }

    println!(
        "\nExpected shape (paper: 0.279s -> 0.652s -> 1.124s): forcing tuples \
         from the input database adds per-slot disjunctions over the input \
         tuples, so time grows with input size."
    );
}
