//! Regenerates the **§VI-C.1 baseline comparison** against the algorithm of
//! reference \[14\] (the ICDE 2010 short paper): datasets drawn from an input
//! database without constraint-solver synthesis.
//!
//! ```sh
//! cargo run -p xdata-bench --release --bin baseline_cmp
//! ```

use std::time::Instant;

use xdata_bench::{chain_schema, chain_sql, secs};
use xdata_catalog::{university, DomainCatalog};
use xdata_core::baseline::baseline_generate;
use xdata_core::{generate, GenOptions};
use xdata_engine::kill::kill_report;
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::normalize;
use xdata_solver::Mode;
use xdata_sql::parse_query;

fn main() {
    println!("Baseline comparison: [14]'s input-db-only approach vs this paper (cf. §VI-C.1)");
    println!("schema without foreign keys (the old algorithm did not handle them)");
    println!(
        "{:>6} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10}",
        "#Joins", "old time", "old #ds", "old kill", "new time", "new #ds", "new kill"
    );
    println!("{}", "-".repeat(84));

    let input = university::sample_data(5);
    let mopts = MutationOptions { include_full: false, include_extensions: false, tree_limit: 20_000 };

    for joins in 1..=6usize {
        let k = joins + 1;
        let schema = chain_schema(k, 0);
        let sql = chain_sql(k);
        let q = normalize(&parse_query(&sql).unwrap(), &schema).unwrap();
        let space = mutation_space(&q, mopts);

        // Old algorithm ([14]).
        let t = Instant::now();
        let old_suite = baseline_generate(&q, &schema, &input);
        let old_time = t.elapsed();
        let old_report = kill_report(&q, &space, &old_suite.data(), &schema).unwrap();

        // This paper's algorithm.
        let domains = DomainCatalog::defaults(&schema);
        let opts = GenOptions { mode: Mode::Unfold, input_db: None, compare_attr_pairs: true, jobs: 1, ..GenOptions::default() };
        let t = Instant::now();
        let new_suite = generate(&q, &schema, &domains, &opts).unwrap();
        let new_time = t.elapsed();
        let new_report = kill_report(&q, &space, &new_suite.data(), &schema).unwrap();

        println!(
            "{:>6} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10}",
            joins,
            secs(old_time),
            old_suite.datasets.len(),
            format!("{}/{}", old_report.killed_count(), space.len()),
            secs(new_time),
            new_suite.datasets.len(),
            format!("{}/{}", new_report.killed_count(), space.len()),
        );
    }

    // Part 2: queries with selections and aggregates — where the old
    // approach misses kills ("was not always able to kill all non-equivalent
    // mutants, even without foreign keys", §VI-C.1): it has no synthetic
    // boundary values and no duplicate-engineering for aggregates.
    println!("\nQueries where input-db-only generation falls short:");
    println!(
        "{:>40} | {:>12} | {:>12}",
        "query", "old killed", "new killed"
    );
    println!("{}", "-".repeat(72));
    for (name, sql) in [
        (
            "join + boundary selection",
            "SELECT i.id FROM instructor i, teaches t \
             WHERE i.id = t.id AND i.salary > 61000",
        ),
        (
            "aggregate (DISTINCT killing)",
            "SELECT dept_id, SUM(salary) FROM instructor GROUP BY dept_id",
        ),
        (
            "selection nobody satisfies",
            "SELECT id FROM instructor WHERE salary > 999000",
        ),
    ] {
        let schema = chain_schema(3, 0);
        let q = normalize(&parse_query(sql).unwrap(), &schema).unwrap();
        let space = mutation_space(&q, mopts);

        let old_suite = baseline_generate(&q, &schema, &input);
        let old_report = kill_report(&q, &space, &old_suite.data(), &schema).unwrap();

        let domains = DomainCatalog::defaults(&schema);
        let opts = GenOptions { mode: Mode::Unfold, input_db: None, compare_attr_pairs: true, jobs: 1, ..GenOptions::default() };
        let new_suite = generate(&q, &schema, &domains, &opts).unwrap();
        let new_report = kill_report(&q, &space, &new_suite.data(), &schema).unwrap();

        println!(
            "{:>40} | {:>12} | {:>12}",
            name,
            format!("{}/{}", old_report.killed_count(), space.len()),
            format!("{}/{}", new_report.killed_count(), space.len()),
        );
    }

    println!(
        "\nExpected shape (paper: old 0.20-0.34s flat; new 0.04-0.79s growing \
         with joins): the old algorithm is fast but misses kills whenever the \
         input database lacks the right witnesses — comparison-boundary \
         values, duplicate aggregate inputs, or any witness at all; the new \
         constraint-based algorithm synthesizes them."
    );
}
