//! Shared helpers for the evaluation harness (§VI-C of the paper).
//!
//! The binaries in `src/bin/` regenerate the paper's tables:
//!
//! * `table1` — inner-join queries, 1–6 joins × foreign-key sweep
//!   (Table I);
//! * `table2` — selection/aggregation query mix (Table II);
//! * `inputdb` — the §VI-C.3 input-database experiment;
//! * `baseline_cmp` — the §VI-C.1 comparison against reference \[14\]'s
//!   approach.
//!
//! Micro/ablation benches live in `benches/` as `harness = false` timing
//! binaries over [`median_time`] (warmup + median-of-N on
//! `std::time::Instant`) — no external bench framework, so everything
//! builds offline.

use std::time::{Duration, Instant};

use xdata_catalog::{university, Attribute, DomainCatalog, Relation, Schema, SplitMix64, SqlType};
use xdata_core::{generate, GenOptions, TestSuite};
use xdata_engine::kill::kill_report;
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::{normalize, NormQuery};
use xdata_solver::Mode;
use xdata_sql::parse_query;

/// SQL text for the evaluation's canonical chain query over `k` relations
/// (`k-1` joins): instructor–teaches–course–takes–student–advisor–
/// department, joined pairwise on the conditions of
/// [`university::join_chain_condition`].
pub fn chain_sql(k: usize) -> String {
    assert!((2..=7).contains(&k), "chain queries span 2..=7 relations");
    let rels = university::join_chain(k);
    let mut conds = Vec::new();
    for i in 0..k - 1 {
        let (lr, la, rr, ra) = university::join_chain_condition(i);
        conds.push(format!("{lr}.{la} = {rr}.{ra}"));
    }
    format!("SELECT * FROM {} WHERE {}", rels.join(", "), conds.join(" AND "))
}

/// Number of foreign keys of the full University schema that are relevant
/// to the first `k` chain relations (the Table I sweep goes from 0 up to
/// "the number of constraints originally present on relations in the
/// query").
pub fn relevant_fk_count(k: usize) -> usize {
    let rels = university::join_chain(k);
    let schema = university::schema();
    schema
        .foreign_keys()
        .iter()
        .filter(|fk| rels.contains(&fk.from.as_str()) && rels.contains(&fk.to.as_str()))
        .count()
}

/// A schema keeping only the foreign keys *among* the first `k` chain
/// relations, truncated to `n` of them.
pub fn chain_schema(k: usize, n_fks: usize) -> Schema {
    let rels = university::join_chain(k);
    let mut schema = university::schema();
    let keep: Vec<xdata_catalog::ForeignKey> = schema
        .foreign_keys()
        .iter()
        .filter(|fk| rels.contains(&fk.from.as_str()) && rels.contains(&fk.to.as_str()))
        .take(n_fks)
        .cloned()
        .collect();
    schema.clear_foreign_keys();
    // Re-add the kept FKs by names.
    let pairs: Vec<(String, Vec<String>, String, Vec<String>)> = keep
        .iter()
        .map(|fk| {
            let from_rel = schema.relation(&fk.from).expect("relation").clone();
            let to_rel = schema.relation(&fk.to).expect("relation").clone();
            (
                fk.from.clone(),
                fk.from_cols.iter().map(|c| from_rel.attr(*c).name.clone()).collect(),
                fk.to.clone(),
                fk.to_cols.iter().map(|c| to_rel.attr(*c).name.clone()).collect(),
            )
        })
        .collect();
    for (from, fc, to, tc) in pairs {
        let fc: Vec<&str> = fc.iter().map(String::as_str).collect();
        let tc: Vec<&str> = tc.iter().map(String::as_str).collect();
        schema.add_foreign_key(&from, &fc, &to, &tc).expect("valid kept FK");
    }
    schema
}

/// SQL for a wide *star* query: `n` spoke relations each equi-joined to a
/// shared hub on its key — many targets over one skeleton shape, the
/// workload incremental sessions are built for (complements the deep
/// chains of [`chain_sql`]).
pub fn star_sql(n: usize) -> String {
    assert!(n >= 1, "a star needs at least one spoke");
    let mut from = vec!["hub".to_string()];
    let mut conds = Vec::new();
    for i in 0..n {
        from.push(format!("s{i}"));
        conds.push(format!("s{i}.hub_id = hub.id"));
    }
    format!("SELECT * FROM {} WHERE {}", from.join(", "), conds.join(" AND "))
}

/// Schema for [`star_sql`]: a `hub` relation plus `n` spokes, each with a
/// foreign key into the hub.
pub fn star_schema(n: usize) -> Schema {
    let mut s = Schema::new();
    let hub_attrs =
        vec![Attribute::new("id", SqlType::Int), Attribute::new("payload", SqlType::Int)];
    s.add_relation(Relation::new("hub", hub_attrs, &["id"]).expect("hub relation"))
        .expect("add hub");
    for i in 0..n {
        let attrs = vec![
            Attribute::new("id", SqlType::Int),
            Attribute::new("hub_id", SqlType::Int),
            Attribute::new("weight", SqlType::Int),
        ];
        let name = format!("s{i}");
        s.add_relation(Relation::new(name.clone(), attrs, &["id"]).expect("spoke relation"))
            .expect("add spoke");
        s.add_foreign_key(&name, &["hub_id"], "hub", &["id"]).expect("spoke FK");
    }
    s
}

/// One seeded random join workload (mirrors the generator in
/// `tests/random_schemas.rs`): relations `r0..rn` with a random acyclic
/// FK graph, joined along the FK edges (isolated relations fall back to a
/// shared-id join).
pub struct RandomJoinCase {
    pub name: String,
    pub sql: String,
    pub schema: Schema,
}

/// Deterministically generate `count` random join cases from `seed`.
pub fn random_join_cases(seed: u64, count: usize) -> Vec<RandomJoinCase> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|case| {
            let n = 2 + rng.below(3);
            let extra_attrs: Vec<usize> = (0..n).map(|_| rng.below(3)).collect();
            let mut all_edges = Vec::new();
            for i in 1..n {
                for j in 0..i {
                    all_edges.push((i, j));
                }
            }
            let fk_edges = rng.subset(&all_edges);

            let mut schema = Schema::new();
            for (i, extra) in extra_attrs.iter().enumerate() {
                let mut attrs = vec![Attribute::new("id", SqlType::Int)];
                for j in 0..n {
                    if fk_edges.contains(&(i, j)) {
                        attrs.push(Attribute::new(format!("r{j}_id"), SqlType::Int));
                    }
                }
                for k in 0..*extra {
                    attrs.push(Attribute::new(format!("a{k}"), SqlType::Int));
                }
                schema
                    .add_relation(Relation::new(format!("r{i}"), attrs, &["id"]).expect("relation"))
                    .expect("add relation");
            }
            for (i, j) in &fk_edges {
                schema
                    .add_foreign_key(
                        &format!("r{i}"),
                        &[&format!("r{j}_id")],
                        &format!("r{j}"),
                        &["id"],
                    )
                    .expect("FK");
            }

            let mut conds: Vec<String> =
                fk_edges.iter().map(|(i, j)| format!("r{i}.r{j}_id = r{j}.id")).collect();
            let mut linked = vec![false; n];
            for (i, j) in &fk_edges {
                linked[*i] = true;
                linked[*j] = true;
            }
            for (i, is_linked) in linked.iter().enumerate().skip(1) {
                if !is_linked {
                    conds.push(format!("r{i}.id = r0.id"));
                }
            }
            if conds.is_empty() {
                conds.push("r0.id = r1.id".into());
            }
            let from: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
            let sql = format!("SELECT * FROM {} WHERE {}", from.join(", "), conds.join(" AND "));
            RandomJoinCase {
                name: format!("random-{case}-{n}rel-{}fk", fk_edges.len()),
                sql,
                schema,
            }
        })
        .collect()
}

/// One evaluation row: generate with the given mode, time it, count
/// datasets; optionally evaluate the kill matrix.
pub struct EvalRow {
    pub datasets: usize,
    pub skipped: usize,
    /// Canonically-deduplicated mutant count.
    pub mutants: usize,
    /// Killed, counting canonical classes once.
    pub killed: usize,
    /// Killed under the paper's raw counting (every `(tree, node, kind)`
    /// triple across all join orderings counts separately).
    pub killed_raw: usize,
    pub time_unfold: Duration,
    pub time_lazy: Duration,
}

/// Generation options for benches (synthetic domains, no input DB).
pub fn bench_opts(mode: Mode) -> GenOptions {
    GenOptions { mode, input_db: None, compare_attr_pairs: true, jobs: 1, ..GenOptions::default() }
}

/// Median-of-`samples` wall time of `f`, after `warmup` unmeasured runs.
/// The median is robust against one-off scheduler hiccups, which matters
/// more than mean/stddev niceties for the coarse comparisons the tables
/// make.
pub fn median_time<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> Duration {
    assert!(samples > 0);
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Run the full §VI-C loop for one query: time both solver modes, then
/// check kills (mutation space excludes full-outer mutations, as the
/// paper's evaluation does).
pub fn evaluate_query(sql: &str, schema: &Schema, tree_limit: usize) -> EvalRow {
    let q = normalize(&parse_query(sql).expect("bench SQL parses"), schema)
        .expect("bench SQL normalizes");
    let domains = DomainCatalog::defaults(schema);

    let (suite, time_unfold) = timed_generate(&q, schema, &domains, Mode::Unfold);
    let (_, time_lazy) = timed_generate(&q, schema, &domains, Mode::Lazy);

    let mopts = MutationOptions { include_full: false, include_extensions: false, tree_limit };
    let space = mutation_space(&q, mopts);
    let report =
        kill_report(&q, &space, &suite.data(), schema).expect("kill checking succeeds");

    // Raw counting: join mutants occupy the first `space.join.len()`
    // indices of the report, each weighted by its multiplicity.
    let mut killed_raw = 0usize;
    for (i, k) in report.killed_by.iter().enumerate() {
        if k.is_none() {
            continue;
        }
        killed_raw += if i < space.join.len() { space.join[i].multiplicity } else { 1 };
    }

    EvalRow {
        // The paper's dataset counts exclude the original-query dataset.
        datasets: suite.datasets.len().saturating_sub(1),
        skipped: suite.skipped.len(),
        mutants: space.len(),
        killed: report.killed_count(),
        killed_raw,
        time_unfold,
        time_lazy,
    }
}

/// Generate and time one mode.
pub fn timed_generate(
    q: &NormQuery,
    schema: &Schema,
    domains: &DomainCatalog,
    mode: Mode,
) -> (TestSuite, Duration) {
    let opts = bench_opts(mode);
    let start = Instant::now();
    let suite = generate(q, schema, domains, &opts).expect("generation succeeds");
    (suite, start.elapsed())
}

/// Format a duration in seconds with millisecond precision, like the
/// paper's tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The `"build"` provenance line every bench artifact embeds right after
/// its opening brace: git sha, rustc version and active feature flags,
/// captured at compile time by `xdata-obs`'s build script. Makes every
/// number in `results/` attributable to a source revision and toolchain.
pub fn build_json_line() -> String {
    format!("  \"build\": {},\n", xdata_obs::build_meta_json(&[]))
}

/// Run `f` under a fresh event journal and write the captured timeline as
/// a Chrome-trace artifact next to the bench JSON it accompanies
/// (`<stem>.trace.json` beside `next_to`, loadable in Perfetto /
/// `chrome://tracing` and analyzable offline with `xdata trace`). The
/// traced run is a *separate* representative pass so journaling overhead
/// never contaminates the measured numbers.
pub fn write_trace_artifact<F: FnOnce()>(next_to: &std::path::Path, f: F) {
    xdata_obs::install_trace();
    f();
    let log = xdata_obs::take_trace().expect("journal installed");
    let name = next_to.file_name().and_then(|s| s.to_str()).unwrap_or("BENCH.json");
    let stem = name.strip_suffix(".json").unwrap_or(name);
    let out = next_to.with_file_name(format!("{stem}.trace.json"));
    std::fs::write(&out, log.to_chrome_json()).expect("write trace artifact");
    println!("wrote {} ({} journal events)", out.display(), log.events.len());
}

/// Re-indent a rendered JSON document (e.g. a `MetricsReport`) so it can
/// be embedded as a nested value inside the hand-rolled JSON the bench
/// binaries write: every line after the first gets `pad` prepended, and
/// the trailing newline is dropped.
pub fn indent_json(json: &str, pad: &str) -> String {
    let mut out = String::new();
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_sql_shapes() {
        let s = chain_sql(2);
        assert!(s.contains("instructor, teaches"));
        assert!(s.contains("instructor.id = teaches.id"));
        let s7 = chain_sql(7);
        assert!(s7.contains("department"));
        assert_eq!(s7.matches(" AND ").count(), 5);
    }

    #[test]
    fn relevant_fks_grow_with_chain() {
        assert!(relevant_fk_count(2) >= 1);
        assert!(relevant_fk_count(7) >= relevant_fk_count(4));
    }

    #[test]
    fn chain_schema_keeps_only_relevant() {
        let s = chain_schema(2, 10);
        assert_eq!(s.foreign_keys().len(), relevant_fk_count(2));
        let s0 = chain_schema(4, 0);
        assert!(s0.foreign_keys().is_empty());
    }

    #[test]
    fn indent_json_pads_continuation_lines() {
        let doc = "{\n  \"a\": 1\n}\n";
        assert_eq!(indent_json(doc, "    "), "{\n      \"a\": 1\n    }");
    }

    #[test]
    fn star_shapes() {
        let s = star_sql(3);
        assert!(s.contains("hub, s0, s1, s2"));
        assert_eq!(s.matches(" AND ").count(), 2);
        let schema = star_schema(3);
        assert_eq!(schema.foreign_keys().len(), 3);
        assert!(schema.relation("s2").is_some());
    }

    #[test]
    fn random_cases_are_deterministic() {
        let a = random_join_cases(0x5c4ea, 4);
        let b = random_join_cases(0x5c4ea, 4);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.sql, y.sql);
        }
    }

    #[test]
    fn evaluate_query_smoke() {
        let schema = chain_schema(2, 0);
        let row = evaluate_query(&chain_sql(2), &schema, 10_000);
        assert_eq!(row.datasets, 2);
        assert_eq!(row.mutants, 2);
        assert_eq!(row.killed, 2);
    }
}
