//! Criterion micro-benchmarks for the constraint solver: the §VI-B
//! unfolding ablation at the solver level, plus DPLL/difference-logic
//! scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xdata_solver::{Atom, Formula, Mode, Problem, RelOp, Term};

/// An FK-shaped problem: `n` referencing tuples, `n+2` referenced tuples,
/// with domains — the constraint pattern X-Data emits most.
fn fk_problem(n: u32) -> Problem {
    let mut p = Problem::new();
    let r = p.add_array("r", n, 2);
    let s = p.add_array("s", n + 2, 2);
    let qi = p.fresh_qvar();
    let qj = p.fresh_qvar();
    p.assert(Formula::forall(
        qi,
        r,
        Formula::exists(
            qj,
            s,
            Formula::atom(Term::qfield(r, qi, 0), RelOp::Eq, Term::qfield(s, qj, 0)),
        ),
    ));
    // Domains.
    for (arr, len) in [(r, n), (s, n + 2)] {
        for i in 0..len {
            for f in 0..2 {
                p.assert(Formula::atom(Term::field(arr, i, f), RelOp::Ge, Term::Const(0)));
                p.assert(Formula::atom(Term::field(arr, i, f), RelOp::Le, Term::Const(50)));
            }
        }
    }
    // Primary key FD on s.
    for i in 0..n + 2 {
        for j in (i + 1)..n + 2 {
            let key_eq =
                Formula::atom(Term::field(s, i, 0), RelOp::Eq, Term::field(s, j, 0));
            let all_eq = Formula::and((0..2).map(|f| {
                Formula::Atom(Atom::new(
                    Term::field(s, i, f),
                    RelOp::Eq,
                    Term::field(s, j, f),
                ))
            }));
            p.assert(Formula::or([Formula::not(key_eq), all_eq]));
        }
    }
    p
}

fn bench_unfold_vs_lazy(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantifier_handling");
    for n in [2u32, 4, 8] {
        let p = fk_problem(n);
        group.bench_with_input(BenchmarkId::new("unfold", n), &p, |b, p| {
            b.iter(|| {
                let (out, _) = p.solve(Mode::Unfold);
                assert!(out.is_sat());
            })
        });
        group.bench_with_input(BenchmarkId::new("lazy", n), &p, |b, p| {
            b.iter(|| {
                let (out, _) = p.solve(Mode::Lazy);
                assert!(out.is_sat());
            })
        });
    }
    group.finish();
}

/// Difference-logic chains: x0 < x1 < ... < xn with tight bounds.
fn bench_diff_logic_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_logic_chain");
    for n in [16u32, 64, 256] {
        let mut p = Problem::new();
        let a = p.add_array("r", n, 1);
        for i in 0..n - 1 {
            p.assert(Formula::atom(
                Term::field(a, i, 0),
                RelOp::Lt,
                Term::field(a, i + 1, 0),
            ));
        }
        p.assert(Formula::atom(Term::field(a, 0, 0), RelOp::Ge, Term::Const(0)));
        p.assert(Formula::atom(
            Term::field(a, n - 1, 0),
            RelOp::Le,
            Term::Const(n as i64),
        ));
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| {
                let (out, _) = p.solve(Mode::Unfold);
                assert!(out.is_sat());
            })
        });
    }
    group.finish();
}

/// Unsatisfiable nullification-vs-FK conflict: the "equivalent mutant"
/// detection path (§V-A) must also be fast.
fn bench_unsat_detection(c: &mut Criterion) {
    let mut p = fk_problem(4);
    // Nullify every s-key against r[0]'s key: contradicts the FK.
    let (r, s) = (xdata_solver::ArrayId(0), xdata_solver::ArrayId(1));
    let q = p.fresh_qvar();
    p.assert(Formula::not_exists(
        q,
        s,
        Formula::atom(Term::qfield(s, q, 0), RelOp::Eq, Term::field(r, 0, 0)),
    ));
    c.bench_function("unsat_equivalent_mutant", |b| {
        b.iter(|| {
            let (out, _) = p.solve(Mode::Unfold);
            assert!(matches!(out, xdata_solver::SolveOutcome::Unsat));
        })
    });
}

criterion_group!(benches, bench_unfold_vs_lazy, bench_diff_logic_chain, bench_unsat_detection);
criterion_main!(benches);
