//! Micro-benchmarks for the constraint solver: the §VI-B unfolding
//! ablation at the solver level, plus DPLL/difference-logic scaling.
//! Plain `harness = false` timing binary (run with `cargo bench`); each
//! figure is the median of several `std::time::Instant` samples after a
//! warmup, printed as a table.

use xdata_bench::median_time;
use xdata_solver::{Atom, Formula, Mode, Problem, RelOp, Term};

/// An FK-shaped problem: `n` referencing tuples, `n+2` referenced tuples,
/// with domains — the constraint pattern X-Data emits most.
fn fk_problem(n: u32) -> Problem {
    let mut p = Problem::new();
    let r = p.add_array("r", n, 2);
    let s = p.add_array("s", n + 2, 2);
    let qi = p.fresh_qvar();
    let qj = p.fresh_qvar();
    p.assert(Formula::forall(
        qi,
        r,
        Formula::exists(
            qj,
            s,
            Formula::atom(Term::qfield(r, qi, 0), RelOp::Eq, Term::qfield(s, qj, 0)),
        ),
    ));
    // Domains.
    for (arr, len) in [(r, n), (s, n + 2)] {
        for i in 0..len {
            for f in 0..2 {
                p.assert(Formula::atom(Term::field(arr, i, f), RelOp::Ge, Term::Const(0)));
                p.assert(Formula::atom(Term::field(arr, i, f), RelOp::Le, Term::Const(50)));
            }
        }
    }
    // Primary key FD on s.
    for i in 0..n + 2 {
        for j in (i + 1)..n + 2 {
            let key_eq =
                Formula::atom(Term::field(s, i, 0), RelOp::Eq, Term::field(s, j, 0));
            let all_eq = Formula::and((0..2).map(|f| {
                Formula::Atom(Atom::new(
                    Term::field(s, i, f),
                    RelOp::Eq,
                    Term::field(s, j, f),
                ))
            }));
            p.assert(Formula::or([Formula::not(key_eq), all_eq]));
        }
    }
    p
}

fn print_row(name: &str, param: impl std::fmt::Display, d: std::time::Duration) {
    println!("{name:<28} {param:>6}  {:>12.6} ms", d.as_secs_f64() * 1e3);
}

fn bench_unfold_vs_lazy() {
    for n in [2u32, 4, 8] {
        let p = fk_problem(n);
        let t = median_time(2, 7, || {
            let (out, _) = p.solve(Mode::Unfold);
            assert!(out.is_sat());
        });
        print_row("quantifier_handling/unfold", n, t);
        let t = median_time(2, 7, || {
            let (out, _) = p.solve(Mode::Lazy);
            assert!(out.is_sat());
        });
        print_row("quantifier_handling/lazy", n, t);
    }
}

/// Difference-logic chains: x0 < x1 < ... < xn with tight bounds.
fn bench_diff_logic_chain() {
    for n in [16u32, 64, 256] {
        let mut p = Problem::new();
        let a = p.add_array("r", n, 1);
        for i in 0..n - 1 {
            p.assert(Formula::atom(
                Term::field(a, i, 0),
                RelOp::Lt,
                Term::field(a, i + 1, 0),
            ));
        }
        p.assert(Formula::atom(Term::field(a, 0, 0), RelOp::Ge, Term::Const(0)));
        p.assert(Formula::atom(
            Term::field(a, n - 1, 0),
            RelOp::Le,
            Term::Const(n as i64),
        ));
        let t = median_time(2, 7, || {
            let (out, _) = p.solve(Mode::Unfold);
            assert!(out.is_sat());
        });
        print_row("diff_logic_chain", n, t);
    }
}

/// Unsatisfiable nullification-vs-FK conflict: the "equivalent mutant"
/// detection path (§V-A) must also be fast.
fn bench_unsat_detection() {
    let mut p = fk_problem(4);
    // Nullify every s-key against r[0]'s key: contradicts the FK.
    let (r, s) = (xdata_solver::ArrayId(0), xdata_solver::ArrayId(1));
    let q = p.fresh_qvar();
    p.assert(Formula::not_exists(
        q,
        s,
        Formula::atom(Term::qfield(s, q, 0), RelOp::Eq, Term::field(r, 0, 0)),
    ));
    let t = median_time(2, 7, || {
        let (out, _) = p.solve(Mode::Unfold);
        assert!(matches!(out, xdata_solver::SolveOutcome::Unsat));
    });
    print_row("unsat_equivalent_mutant", "-", t);
}

fn main() {
    println!("solver micro-benches (median of 7, 2 warmup)");
    bench_unfold_vs_lazy();
    bench_diff_logic_chain();
    bench_unsat_detection();
}
