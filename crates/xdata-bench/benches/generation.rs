//! End-to-end suite-generation benches — the ablations called out in
//! DESIGN.md: unfolding on/off across join counts, FK-count effect,
//! aggregate-dataset cost, and mutant-space enumeration cost. Plain
//! `harness = false` timing binary over `median_time` (Instant-based,
//! warmup + median-of-N).

use xdata_bench::{chain_schema, chain_sql, median_time};
use xdata_catalog::DomainCatalog;
use xdata_core::{generate, GenOptions};
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::normalize;
use xdata_solver::Mode;
use xdata_sql::parse_query;

fn print_row(name: &str, param: impl std::fmt::Display, d: std::time::Duration) {
    println!("{name:<28} {param:>6}  {:>12.3} ms", d.as_secs_f64() * 1e3);
}

fn bench_generation_by_joins() {
    for joins in [1usize, 2, 3, 4] {
        let k = joins + 1;
        let schema = chain_schema(k, 0);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        for (name, mode) in [("unfold", Mode::Unfold), ("lazy", Mode::Lazy)] {
            let opts = GenOptions { mode, ..GenOptions::default() };
            let t = median_time(1, 5, || {
                generate(&q, &schema, &domains, &opts).unwrap();
            });
            print_row(&format!("generate_by_joins/{name}"), joins, t);
        }
    }
}

fn bench_fk_effect() {
    let k = 4;
    for fks in [0usize, 1, 2, 3] {
        let schema = chain_schema(k, fks);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        let opts = GenOptions::default();
        let t = median_time(1, 5, || {
            generate(&q, &schema, &domains, &opts).unwrap();
        });
        print_row("generate_fk_sweep_3joins", fks, t);
    }
}

fn bench_aggregate_dataset() {
    let schema = chain_schema(3, 1);
    let q = normalize(
        &parse_query(
            "SELECT i.dept_id, SUM(i.salary) FROM instructor i, teaches t \
             WHERE i.id = t.id GROUP BY i.dept_id",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let domains = DomainCatalog::defaults(&schema);
    let opts = GenOptions::default();
    let t = median_time(1, 5, || {
        generate(&q, &schema, &domains, &opts).unwrap();
    });
    print_row("generate_aggregate_query", "-", t);
}

fn bench_mutation_enumeration() {
    for joins in [2usize, 3, 4, 5] {
        let k = joins + 1;
        let schema = chain_schema(k, 0);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let t = median_time(1, 5, || {
            mutation_space(
                &q,
                MutationOptions { include_full: false, include_extensions: false, tree_limit: 20_000 },
            );
        });
        print_row("mutation_space", joins, t);
    }
}

fn bench_suite_minimization() {
    // The §VII future-work feature: greedy set cover over the kill matrix.
    let schema = chain_schema(4, 2);
    let q = normalize(&parse_query(&chain_sql(4)).unwrap(), &schema).unwrap();
    let domains = DomainCatalog::defaults(&schema);
    let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
    let space = mutation_space(
        &q,
        MutationOptions { include_full: false, include_extensions: false, tree_limit: 20_000 },
    );
    let t = median_time(1, 5, || {
        xdata_core::minimize_suite(&q, &suite, &space, &schema).unwrap();
    });
    print_row("minimize_suite_3joins", "-", t);
}

fn bench_having_generation() {
    // Constrained aggregation: group construction with COUNT/SUM conjuncts.
    let schema = chain_schema(2, 0);
    let q = normalize(
        &parse_query(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id \
             HAVING COUNT(*) > 2 AND SUM(salary) >= 40",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let domains = DomainCatalog::defaults(&schema);
    let opts = GenOptions::default();
    let t = median_time(1, 5, || {
        generate(&q, &schema, &domains, &opts).unwrap();
    });
    print_row("generate_having_query", "-", t);
}

fn main() {
    println!("generation benches (median of 5, 1 warmup)");
    bench_generation_by_joins();
    bench_fk_effect();
    bench_aggregate_dataset();
    bench_mutation_enumeration();
    bench_suite_minimization();
    bench_having_generation();
}
