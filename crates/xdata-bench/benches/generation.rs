//! Criterion benches for end-to-end suite generation — the ablations called
//! out in DESIGN.md: unfolding on/off across join counts, FK-count effect,
//! aggregate-dataset cost, and mutant-space enumeration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xdata_bench::{chain_schema, chain_sql};
use xdata_catalog::DomainCatalog;
use xdata_core::{generate, GenOptions};
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::normalize;
use xdata_solver::Mode;
use xdata_sql::parse_query;

fn bench_generation_by_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_by_joins");
    group.sample_size(10);
    for joins in [1usize, 2, 3, 4] {
        let k = joins + 1;
        let schema = chain_schema(k, 0);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        for (name, mode) in [("unfold", Mode::Unfold), ("lazy", Mode::Lazy)] {
            group.bench_with_input(
                BenchmarkId::new(name, joins),
                &(&q, &schema, &domains),
                |b, (q, schema, domains)| {
                    let opts = GenOptions { mode, ..GenOptions::default() };
                    b.iter(|| generate(q, schema, domains, &opts).unwrap())
                },
            );
        }
    }
    group.finish();
}

fn bench_fk_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_fk_sweep_3joins");
    group.sample_size(10);
    let k = 4;
    for fks in [0usize, 1, 2, 3] {
        let schema = chain_schema(k, fks);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        let domains = DomainCatalog::defaults(&schema);
        group.bench_with_input(
            BenchmarkId::from_parameter(fks),
            &(&q, &schema, &domains),
            |b, (q, schema, domains)| {
                let opts = GenOptions::default();
                b.iter(|| generate(q, schema, domains, &opts).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_aggregate_dataset(c: &mut Criterion) {
    let schema = chain_schema(3, 1);
    let q = normalize(
        &parse_query(
            "SELECT i.dept_id, SUM(i.salary) FROM instructor i, teaches t \
             WHERE i.id = t.id GROUP BY i.dept_id",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let domains = DomainCatalog::defaults(&schema);
    c.bench_function("generate_aggregate_query", |b| {
        let opts = GenOptions::default();
        b.iter(|| generate(&q, &schema, &domains, &opts).unwrap())
    });
}

fn bench_mutation_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutation_space");
    for joins in [2usize, 3, 4, 5] {
        let k = joins + 1;
        let schema = chain_schema(k, 0);
        let q = normalize(&parse_query(&chain_sql(k)).unwrap(), &schema).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(joins), &q, |b, q| {
            b.iter(|| mutation_space(q, MutationOptions { include_full: false, include_extensions: false, tree_limit: 20_000 }))
        });
    }
    group.finish();
}

fn bench_suite_minimization(c: &mut Criterion) {
    // The §VII future-work feature: greedy set cover over the kill matrix.
    let schema = chain_schema(4, 2);
    let q = normalize(&parse_query(&chain_sql(4)).unwrap(), &schema).unwrap();
    let domains = DomainCatalog::defaults(&schema);
    let suite = generate(&q, &schema, &domains, &GenOptions::default()).unwrap();
    let space = mutation_space(
        &q,
        MutationOptions { include_full: false, include_extensions: false, tree_limit: 20_000 },
    );
    c.bench_function("minimize_suite_3joins", |b| {
        b.iter(|| xdata_core::minimize_suite(&q, &suite, &space, &schema).unwrap())
    });
}

fn bench_having_generation(c: &mut Criterion) {
    // Constrained aggregation: group construction with COUNT/SUM conjuncts.
    let schema = chain_schema(2, 0);
    let q = normalize(
        &parse_query(
            "SELECT dept_id, COUNT(*) FROM instructor GROUP BY dept_id \
             HAVING COUNT(*) > 2 AND SUM(salary) >= 40",
        )
        .unwrap(),
        &schema,
    )
    .unwrap();
    let domains = DomainCatalog::defaults(&schema);
    c.bench_function("generate_having_query", |b| {
        let opts = GenOptions::default();
        b.iter(|| generate(&q, &schema, &domains, &opts).unwrap())
    });
}

criterion_group!(
    benches,
    bench_generation_by_joins,
    bench_fk_effect,
    bench_aggregate_dataset,
    bench_mutation_enumeration,
    bench_suite_minimization,
    bench_having_generation
);
criterion_main!(benches);
