//! Request handling: decode → options → warm pipeline → rendered output.
//!
//! Every handler reproduces the corresponding batch CLI path byte-for-byte
//! (the loopback tests assert it): `generate` renders the
//! [`TestSuite`] display, `evaluate` the listing of [`render_evaluate`]
//! (which the CLI itself calls), `grade_batch` the
//! [`BatchGradeReport::render`](xdata_core::BatchGradeReport::render)
//! text. The only serve-specific state is the [`WarmCache`] the suite
//! generation runs against, and warm state never changes output for
//! deadline-free runs (see `xdata_core::warm`).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use xdata_catalog::{Dataset, DomainCatalog, Schema};
use xdata_client::protocol::{
    ErrorCode, Payload, Request, RequestBody, Response, WireError, WireOptions, PROTOCOL_VERSION,
};
use xdata_core::kill::KillReport;
use xdata_core::{
    generate_warm, grade_batch_warm, FaultPlan, GenOptions, GradeError, TestSuite,
};
use xdata_solver::{Mode, SearchCore};
use xdata_engine::JoinStrategy;
use xdata_par::CancelToken;
use xdata_relalg::mutation::{mutation_space, MutationOptions};
use xdata_relalg::{normalize, Mutant, MutationSpace, NormQuery};

use crate::{lock, Shared};

/// A parsed schema script, cached daemon-long by content hash.
pub(crate) struct ParsedScript {
    pub schema: Schema,
    pub data: Dataset,
}

/// Two-seed 128-bit content key for the schema-script cache — same shape
/// as the solve-memo key, so accidental collisions are no more likely
/// here than there.
fn script_key(text: &str) -> (u64, u64) {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    0xC0DE_CAFE_u64.hash(&mut h2);
    text.hash(&mut h1);
    text.hash(&mut h2);
    (h1.finish(), h2.finish())
}

fn wire(code: ErrorCode, message: impl Into<String>) -> WireError {
    WireError { code, message: message.into() }
}

fn parsed_script(shared: &Shared, text: &str) -> Result<Arc<ParsedScript>, WireError> {
    let key = script_key(text);
    if let Some(p) = lock(&shared.schemas).get(&key) {
        return Ok(Arc::clone(p));
    }
    // Parse outside the lock; a concurrent duplicate insert is idempotent.
    let (schema, data) = xdata_sql::parse_script(text)
        .map_err(|e| wire(ErrorCode::ParseError, e.render(text)))?;
    let p = Arc::new(ParsedScript { schema, data });
    lock(&shared.schemas).insert(key, Arc::clone(&p));
    Ok(p)
}

/// The warm-cache namespace for one `(tenant, schema script)` pair. The
/// script hash is part of the namespace because session salts hash only
/// the *query* structurally — the same query text under two different
/// schemas must never share warm sessions.
fn namespace(tenant: &str, schema_text: &str) -> String {
    let (a, b) = script_key(schema_text);
    format!("{tenant}\u{1f}{a:016x}{b:016x}")
}

/// Map wire options onto [`GenOptions`] + domains, mirroring the CLI flag
/// handling (`src/bin/xdata.rs`) field for field.
fn build_opts(
    w: &WireOptions,
    script: &ParsedScript,
) -> Result<(GenOptions, DomainCatalog), WireError> {
    let mut opts = GenOptions { jobs: w.jobs, ..GenOptions::default() };
    opts.mode = match w.mode.as_str() {
        "unfold" => Mode::Unfold,
        "lazy" => Mode::Lazy,
        other => return Err(wire(ErrorCode::BadRequest, format!("unknown mode `{other}`"))),
    };
    (opts.core, opts.incremental) = match w.search_core.as_str() {
        "session" => (SearchCore::Cdcl, true),
        "cdcl" => (SearchCore::Cdcl, false),
        "dpll" => (SearchCore::Dpll, false),
        other => {
            return Err(wire(ErrorCode::BadRequest, format!("unknown search core `{other}`")))
        }
    };
    if let Some(limit) = w.decision_limit {
        opts.decision_limit = limit;
    }
    opts.per_target_deadline_ms = w.target_deadline_ms;
    opts.faults = FaultPlan {
        panic_targets: w.fault_panic.clone(),
        unknown_targets: w.fault_unknown.clone(),
        expire_targets: w.fault_expire.clone(),
    };
    let domains = if w.use_input_db {
        if script.data.is_empty() {
            return Err(wire(
                ErrorCode::BadRequest,
                "use_input_db: the schema script has no INSERT statements",
            ));
        }
        let d = DomainCatalog::from_dataset(&script.schema, &script.data);
        opts.input_db = Some(script.data.clone());
        d
    } else if !script.data.is_empty() {
        // The data's values become the domains (the paper's default).
        DomainCatalog::from_dataset(&script.schema, &script.data)
    } else {
        DomainCatalog::defaults(&script.schema)
    };
    Ok((opts, domains))
}

fn parse_join(s: &str) -> Result<JoinStrategy, WireError> {
    match s {
        "hash" => Ok(JoinStrategy::Hash),
        "nested-loop" => Ok(JoinStrategy::NestedLoop),
        other => Err(wire(ErrorCode::BadRequest, format!("unknown join strategy `{other}`"))),
    }
}

/// Render the `evaluate` listing — the exact lines the CLI `evaluate`
/// command prints (it calls this function), shared so the wire output and
/// the terminal output cannot drift.
pub fn render_evaluate(
    query: &NormQuery,
    suite: &TestSuite,
    space: &MutationSpace,
    report: &KillReport,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} datasets, {} mutants ({} raw), {} killed, {} surviving",
        suite.datasets.len(),
        space.len(),
        space.raw_len(),
        report.killed_count(),
        space.len() - report.killed_count()
    );
    // A surviving mutant only *proves* equivalence when every planned
    // target produced a dataset; with degradation skips the verdict is
    // merely "unresolved".
    let partial = suite.is_partial();
    if !suite.skipped.is_empty() {
        let _ = writeln!(out, "skipped targets:");
        for s in &suite.skipped {
            let _ = writeln!(out, "  {} — {}", s.label, s.reason);
        }
    }
    let mutants: Vec<Mutant> = space.iter().collect();
    for (mi, killer) in report.killed_by.iter().enumerate() {
        let desc = mutants[mi].describe(query);
        match killer {
            Some(d) => {
                let _ = writeln!(out, "  killed by #{d}: {desc}");
            }
            None if report.unevaluated.contains(&mi) => {
                let _ = writeln!(out, "  UNEVALUATED (deadline expired): {desc}");
            }
            None if partial => {
                let _ = writeln!(out, "  SURVIVES (unresolved: suite is partial): {desc}");
            }
            None => {
                let _ = writeln!(out, "  SURVIVES (equivalent): {desc}");
            }
        }
    }
    out
}

fn grade_error(e: GradeError) -> WireError {
    match e {
        GradeError::Parse(e) => wire(ErrorCode::ParseError, e.to_string()),
        GradeError::RelAlg(e) => wire(ErrorCode::RelalgError, e.to_string()),
        GradeError::Gen(e) => wire(ErrorCode::GenError, e.to_string()),
        GradeError::Engine(e) => wire(ErrorCode::EngineError, e.to_string()),
    }
}

/// Admission control: the effective deadline after clamping to the
/// server's `max_deadline_ms`. The bool reports whether the *client's*
/// budget was cut (imposing a max on a request that sent none is policy,
/// not a clamp).
fn effective_deadline(requested: Option<u64>, max: Option<u64>) -> (Option<u64>, bool) {
    match (requested, max) {
        (None, None) => (None, false),
        (Some(d), None) => (Some(d), false),
        (None, Some(m)) => (Some(m), false),
        (Some(d), Some(m)) if d > m => (Some(m), true),
        (Some(d), Some(_)) => (Some(d), false),
    }
}

/// Normalize-then-generate under the warm cache: the shared front half of
/// `generate` and `evaluate`.
fn warm_suite(
    shared: &Shared,
    tenant: &str,
    schema_text: &str,
    query_sql: &str,
    options: &WireOptions,
    cancel: &CancelToken,
) -> Result<(Arc<ParsedScript>, GenOptions, NormQuery, TestSuite), WireError> {
    let script = parsed_script(shared, schema_text)?;
    let (opts, domains) = build_opts(options, &script)?;
    let ast = xdata_sql::parse_query(query_sql)
        .map_err(|e| wire(ErrorCode::ParseError, e.to_string()))?;
    let query = normalize(&ast, &script.schema)
        .map_err(|e| wire(ErrorCode::RelalgError, e.to_string()))?;
    let ns = namespace(tenant, schema_text);
    let suite = generate_warm(&query, &script.schema, &domains, &opts, cancel, &shared.warm, &ns)
        .map_err(|e| wire(ErrorCode::GenError, e.to_string()))?;
    Ok((script, opts, query, suite))
}

fn run_method(shared: &Shared, req: &Request, cancel: &CancelToken) -> Result<String, WireError> {
    match &req.body {
        RequestBody::Ping => Ok(format!(
            "pong: protocol {PROTOCOL_VERSION}, warm memo entries {}, warm sessions {}\n",
            shared.warm.memo_entries(),
            shared.warm.session_count()
        )),
        RequestBody::Shutdown => Ok("shutting down: draining connections\n".to_string()),
        RequestBody::Generate(p) => {
            let (_, _, _, suite) =
                warm_suite(shared, &req.tenant, &p.schema, &p.query, &p.options, cancel)?;
            Ok(suite.to_string())
        }
        RequestBody::Evaluate(p) => {
            let (script, opts, query, suite) =
                warm_suite(shared, &req.tenant, &p.schema, &p.query, &p.options, cancel)?;
            let mopts = MutationOptions {
                include_full: p.options.include_full,
                tree_limit: 20_000,
                ..Default::default()
            };
            let space = mutation_space(&query, mopts);
            let report = xdata_core::kill::kill_report_cancel(
                &query,
                &space,
                &suite.data(),
                &script.schema,
                opts.jobs,
                cancel,
            )
            .map_err(|e| wire(ErrorCode::EngineError, e.to_string()))?;
            Ok(render_evaluate(&query, &suite, &space, &report))
        }
        RequestBody::GradeBatch(p) => {
            let script = parsed_script(shared, &p.schema)?;
            let (opts, domains) = build_opts(&p.options, &script)?;
            let strategy = parse_join(&p.options.join_strategy)?;
            let ns = namespace(&req.tenant, &p.schema);
            let report = grade_batch_warm(
                &p.query,
                &p.candidates,
                &script.schema,
                &domains,
                &opts,
                strategy,
                cancel,
                &shared.warm,
                &ns,
            )
            .map_err(grade_error)?;
            Ok(report.render())
        }
    }
}

/// [`run_method`] behind an unwind barrier: a panic inside the pipeline
/// (e.g. an injected chaos fault) becomes an `internal` error frame on
/// this request instead of killing the worker thread and its connection.
fn run_catching(
    shared: &Shared,
    req: &Request,
    cancel: &CancelToken,
) -> Result<String, WireError> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_method(shared, req, cancel))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic in request handler".to_string());
            Err(wire(ErrorCode::Internal, msg))
        }
    }
}

/// Snapshot the daemon-lifetime `serve.*` totals (plus warm-cache
/// occupancy) into the installed recorder, so a per-request metrics report
/// carries them. No-op when no recorder is installed.
fn snapshot_serve_counters(shared: &Shared) {
    let s = &shared.stats;
    xdata_obs::counter("serve.connections", s.connections.load(Ordering::Relaxed));
    xdata_obs::counter("serve.requests", s.requests.load(Ordering::Relaxed));
    xdata_obs::counter("serve.requests.generate", s.requests_generate.load(Ordering::Relaxed));
    xdata_obs::counter("serve.requests.evaluate", s.requests_evaluate.load(Ordering::Relaxed));
    xdata_obs::counter(
        "serve.requests.grade_batch",
        s.requests_grade_batch.load(Ordering::Relaxed),
    );
    xdata_obs::counter("serve.requests.ping", s.requests_ping.load(Ordering::Relaxed));
    xdata_obs::counter("serve.errors", s.errors.load(Ordering::Relaxed));
    xdata_obs::counter("serve.rejected_frames", s.rejected_frames.load(Ordering::Relaxed));
    xdata_obs::counter("serve.deadline_clamped", s.deadline_clamped.load(Ordering::Relaxed));
    xdata_obs::counter("serve.warm.memo_entries", shared.warm.memo_entries() as u64);
    xdata_obs::counter("serve.warm.sessions", shared.warm.session_count() as u64);
}

/// The full request lifecycle: stats, deadline mapping, the metrics gate,
/// the unwind barrier, and response assembly.
pub(crate) fn handle_request(
    shared: &Shared,
    conn_cancel: &CancelToken,
    req: Request,
) -> Response {
    let start = Instant::now();
    let s = &shared.stats;
    if shared.shutdown.load(Ordering::Acquire)
        && !matches!(req.body, RequestBody::Shutdown)
    {
        // Raced the drain window: the frame was read before the flag
        // flipped. Refuse typed rather than executing work the daemon
        // will not outlive.
        return Response::err(
            req.id,
            ErrorCode::ShuttingDown,
            "server is draining after a shutdown request",
        );
    }
    s.requests.fetch_add(1, Ordering::Relaxed);
    match &req.body {
        RequestBody::Generate(_) => s.requests_generate.fetch_add(1, Ordering::Relaxed),
        RequestBody::Evaluate(_) => s.requests_evaluate.fetch_add(1, Ordering::Relaxed),
        RequestBody::GradeBatch(_) => s.requests_grade_batch.fetch_add(1, Ordering::Relaxed),
        RequestBody::Ping | RequestBody::Shutdown => {
            s.requests_ping.fetch_add(1, Ordering::Relaxed)
        }
    };
    let (deadline, clamped) =
        effective_deadline(req.deadline_ms, shared.config.max_deadline_ms);
    if clamped {
        s.deadline_clamped.fetch_add(1, Ordering::Relaxed);
    }
    let cancel = conn_cancel.child_for_deadline_ms(deadline);

    let result;
    let mut metrics_json = None;
    let mut trace_json = None;
    if req.metrics || req.trace {
        // Exclusive: the obs recorder is process-global, so a per-request
        // report must not see any other request's increments.
        let _g = shared.gate.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = xdata_obs::take_report(); // drop any stale state
        let _ = xdata_obs::take_trace();
        if req.metrics {
            xdata_obs::install();
            xdata_obs::preseed();
        }
        if req.trace {
            xdata_obs::install_trace();
        }
        result = run_catching(shared, &req, &cancel);
        if req.metrics {
            snapshot_serve_counters(shared);
            metrics_json = xdata_obs::take_report().map(|r| r.to_json());
        }
        if req.trace {
            trace_json = xdata_obs::take_trace().map(|t| t.to_chrome_json());
        }
    } else {
        let _g = shared.gate.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        result = run_catching(shared, &req, &cancel);
    }

    match result {
        Ok(output) => Response::ok(
            req.id,
            Payload {
                output,
                elapsed_ns: start.elapsed().as_nanos() as u64,
                metrics_json,
                trace_json,
            },
        ),
        Err(e) => Response::err(req.id, e.code, e.message),
    }
}
