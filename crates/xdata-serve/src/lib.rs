//! # xdata-serve
//!
//! Persistent service mode for the X-Data pipeline: a long-running TCP
//! daemon (`xdata serve --listen ADDR`) that answers `generate`,
//! `evaluate`, and `grade_batch` requests over the line-delimited JSON
//! protocol defined in [`xdata_client::protocol`] (normative spec:
//! PROTOCOL.md at the repo root; runbook: OPERATIONS.md).
//!
//! The point of the daemon — versus the batch CLI, which produces the
//! same bytes — is **warm state**. A process-long
//! [`WarmCache`] keeps the solve memo and the
//! incremental CDCL session engines alive across
//! requests, keyed by structural hashes under a per-tenant namespace: a
//! grading service calling `grade_batch` against one reference query pays
//! for suite generation once and replays memoized solves on every later
//! batch (the `serve_sweep` bench measures the multiplier). Parsed schema
//! scripts are cached the same way.
//!
//! ## Threading model
//!
//! One **acceptor** (the thread that called [`Server::serve`]) accepts
//! connections and pushes them onto a queue; a fixed pool of **workers**
//! (`--serve-workers`) pops connections and serves each to completion —
//! requests on one connection are strictly sequential, concurrency comes
//! from concurrent connections. Inside a request the pipeline fans out on
//! its own `jobs` threads via `xdata-par`, and cancellation uses the
//! `xdata-par` token tree: one root token per server, a child per
//! connection, and a deadline child per request (`deadline_ms`, clamped to
//! `--max-deadline-ms`), so expiry degrades the request exactly like the
//! batch CLI — partial suites and `Unevaluated` verdicts, never a wrong
//! verdict and never a torn frame.
//!
//! ## Metrics
//!
//! The `xdata-obs` recorder is process-global, so per-request reports need
//! exclusivity: a request with `metrics`/`trace` set takes the write side
//! of an in-flight RwLock (waiting out concurrent requests), installs the
//! recorder, runs, and embeds the report in its response. `serve.*`
//! counters in such a report are daemon-lifetime totals snapshotted at
//! response time; every other key is request-scoped. See OPERATIONS.md.

mod handler;

pub use handler::render_evaluate;

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use xdata_client::protocol::{ErrorCode, Request, Response};
use xdata_core::WarmCache;
use xdata_par::CancelToken;

/// Daemon configuration (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7878"`; port `0` picks an
    /// ephemeral port (read it back from [`Server::local_addr`]).
    pub listen: String,
    /// Worker threads — the maximum number of concurrently served
    /// connections.
    pub workers: usize,
    /// Per-frame byte cap; a longer request line is answered with
    /// `oversized_frame` and the connection is closed.
    pub max_line_bytes: usize,
    /// Admission control: an upper bound applied to every request's
    /// `deadline_ms` (and imposed on requests that sent none).
    pub max_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 4,
            max_line_bytes: xdata_client::protocol::MIN_MAX_FRAME_BYTES,
            max_deadline_ms: None,
        }
    }
}

/// Daemon-lifetime totals behind the `serve.*` metric keys (snapshotted
/// into per-request reports; also summarized by `ping`).
#[derive(Default)]
pub(crate) struct ServeStats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub requests_generate: AtomicU64,
    pub requests_evaluate: AtomicU64,
    pub requests_grade_batch: AtomicU64,
    pub requests_ping: AtomicU64,
    pub errors: AtomicU64,
    pub rejected_frames: AtomicU64,
    pub deadline_clamped: AtomicU64,
}

pub(crate) struct Shared {
    pub config: ServerConfig,
    pub warm: WarmCache,
    /// Parsed schema scripts keyed by a two-seed hash of the script text
    /// (see `handler::script_key`).
    pub schemas: Mutex<std::collections::HashMap<(u64, u64), Arc<handler::ParsedScript>>>,
    /// The per-request metrics exclusivity gate: normal requests hold the
    /// read side, metrics/trace requests the write side.
    pub gate: RwLock<()>,
    pub stats: ServeStats,
    pub shutdown: AtomicBool,
    /// Root of the cancellation tree; cancelled only by
    /// [`ServerHandle::kill`] (hard stop), not by graceful shutdown.
    pub root_cancel: CancelToken,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A bound, not-yet-serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured listen address.
    pub fn bind(mut config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.listen)?;
        // Rewrite the config to the resolved address so a port-0 bind can
        // still poke itself loose during a wire-initiated shutdown.
        config.listen = listener.local_addr()?.to_string();
        let shared = Arc::new(Shared {
            config,
            warm: WarmCache::new(),
            schemas: Mutex::new(std::collections::HashMap::new()),
            gate: RwLock::new(()),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            root_cancel: CancelToken::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a graceful `shutdown` request (or [`ServerHandle`]
    /// shutdown) arrives: blocks the calling thread as the acceptor,
    /// spawning the worker pool. In-flight requests finish; idle
    /// connections are closed.
    pub fn serve(self) -> std::io::Result<()> {
        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            self.shared.stats.connections.fetch_add(1, Ordering::Relaxed);
            let mut q = lock(&self.shared.queue);
            q.push_back(stream);
            drop(q);
            self.shared.queue_cv.notify_one();
        }
        // Drain: wake every worker so those idling on an empty queue see
        // the shutdown flag and exit; workers mid-connection finish their
        // connection first (read timeouts bound the wait).
        self.shared.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// [`Server::serve`] on a background thread, returning a handle with
    /// the bound address. The in-process shape used by tests and the
    /// `serve_sweep` bench.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.serve());
        Ok(ServerHandle { addr, shared, thread: Some(thread) })
    }
}

/// Handle to a daemon running via [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful stop: stop accepting, let in-flight requests finish, join
    /// the acceptor. Equivalent to a `shutdown` request over the wire.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        begin_shutdown(&self.shared, self.addr);
        match self.thread.take() {
            Some(t) => t.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

/// Flip the shutdown flag and poke the acceptor loose from `accept()` with
/// a throwaway connection.
pub(crate) fn begin_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shared
                    .queue_cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match conn {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// How long a blocked read waits before re-checking the shutdown flag.
/// Bounds graceful-shutdown latency for idle keep-alive connections.
const READ_POLL: Duration = Duration::from_millis(100);

enum Frame {
    Line(String),
    /// Clean close (EOF at a frame boundary) or shutdown drain.
    Close,
    Oversized,
}

/// Read one `\n`-terminated frame, capped at `max` bytes, re-checking
/// `shutdown` while blocked. An oversized line is consumed (so the error
/// response is the only bytes the client sees for it) but the connection
/// is closed right after.
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(Frame::Close);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            // EOF. Mid-frame EOF with buffered bytes is a torn frame; treat
            // both cases as a close — there is no id to answer on anyway.
            return Ok(Frame::Close);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let over = line.len() + pos > max;
                if !over {
                    line.extend_from_slice(&buf[..pos]);
                }
                reader.consume(pos + 1);
                if over {
                    return Ok(Frame::Oversized);
                }
                let text = String::from_utf8(line)
                    .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned());
                return Ok(Frame::Line(text));
            }
            None => {
                let n = buf.len();
                if line.len() + n > max {
                    // Keep consuming until the newline, but stop buffering.
                    reader.consume(n);
                    return discard_to_newline(reader, shutdown);
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Swallow the rest of an oversized line so the connection can emit the
/// `oversized_frame` response at a frame boundary.
fn discard_to_newline(
    reader: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
) -> std::io::Result<Frame> {
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(Frame::Close);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(Frame::Close);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(Frame::Oversized);
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut line = resp.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Serve one connection to completion: a strict request/response loop
/// under a per-connection cancellation token.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let conn_cancel = shared.root_cancel.child();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let frame = match read_frame(&mut reader, shared.config.max_line_bytes, &shared.shutdown) {
            Ok(f) => f,
            Err(_) => return,
        };
        match frame {
            Frame::Close => return,
            Frame::Oversized => {
                shared.stats.rejected_frames.fetch_add(1, Ordering::Relaxed);
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                // No parsed id to echo — 0 is the documented placeholder.
                let resp = Response::err(
                    0,
                    ErrorCode::OversizedFrame,
                    format!(
                        "request line exceeds the {}-byte frame cap; closing connection",
                        shared.config.max_line_bytes
                    ),
                );
                let _ = write_response(&mut writer, &resp);
                return;
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    // Tolerate blank keep-alive lines.
                    continue;
                }
                let req = match Request::decode(&line) {
                    Ok(r) => r,
                    Err(msg) => {
                        shared.stats.rejected_frames.fetch_add(1, Ordering::Relaxed);
                        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                        let code = if msg.contains("unknown method") {
                            ErrorCode::UnknownMethod
                        } else {
                            ErrorCode::BadRequest
                        };
                        // Best-effort id recovery so the client can still
                        // correlate: a malformed frame may yet be valid JSON
                        // with an id field.
                        let id = xdata_obs::parse_json(&line)
                            .ok()
                            .and_then(|j| j.get("id").and_then(xdata_obs::Json::as_u64))
                            .unwrap_or(0);
                        let _ = write_response(&mut writer, &Response::err(id, code, msg));
                        continue;
                    }
                };
                let is_shutdown =
                    matches!(req.body, xdata_client::protocol::RequestBody::Shutdown);
                let resp = handler::handle_request(shared, &conn_cancel, req);
                if resp.result.is_err() {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                if write_response(&mut writer, &resp).is_err() {
                    return;
                }
                if is_shutdown {
                    begin_shutdown_from_request(shared);
                    return;
                }
            }
        }
    }
}

/// Graceful shutdown initiated over the wire: the listen address is
/// re-resolved from config (port 0 configs were rewritten at bind time by
/// `xdata serve`; in-process servers use [`ServerHandle::shutdown`]).
fn begin_shutdown_from_request(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    if let Some(addr) = shared
        .config
        .listen
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        let _ = TcpStream::connect(addr);
    }
    shared.queue_cv.notify_all();
}
